(* Tests for the Icoe_fault resilience layer: seeded plan determinism,
   the plan query algebra, bounded retries with deterministic backoff,
   the Young/Daly formula, the checkpoint/restart driver's accounting
   invariant, and — the acceptance-critical property — that
   restore-and-replay of the real engines (SW4, Cardioid, ddcMD, CVODE)
   reproduces the fault-free final state. *)

module F = Icoe_fault
module Plan = F.Plan
module Retry = F.Retry
module Checkpoint = F.Checkpoint

let check_float = Alcotest.(check (float 1e-9))

(* --- plans --- *)

let test_plan_determinism () =
  let a = Plan.generate ~seed:42 Plan.default_config in
  let b = Plan.generate ~seed:42 Plan.default_config in
  Alcotest.(check bool) "same seed, same schedule" true
    (Plan.node_failures a = Plan.node_failures b);
  Alcotest.(check bool) "same seed, same counts" true
    (Plan.counts a = Plan.counts b);
  let c = Plan.generate ~seed:43 Plan.default_config in
  Alcotest.(check bool) "different seed differs" true
    (Plan.node_failures a <> Plan.node_failures c
    || Plan.counts a <> Plan.counts c)

let test_plan_class_independence () =
  (* tweaking one hazard rate must not perturb the other classes *)
  let base = Plan.generate ~seed:7 Plan.default_config in
  let hotter_links =
    Plan.generate ~seed:7
      { Plan.default_config with link_mtbf_s = Plan.default_config.link_mtbf_s /. 4.0 }
  in
  Alcotest.(check bool) "node failures untouched" true
    (Plan.node_failures base = Plan.node_failures hotter_links)

let test_plan_disabled_classes () =
  let quiet =
    Plan.generate ~seed:11
      { Plan.default_config with
        node_mtbf_s = infinity; link_mtbf_s = infinity;
        straggler_mtbf_s = infinity; kernel_fault_mtbf_s = infinity }
  in
  Alcotest.(check bool) "no events at all" true
    (Plan.counts quiet = (0, 0, 0, 0));
  check_float "failure-free MTBF is the horizon"
    Plan.default_config.horizon_s (Plan.mtbf quiet);
  Alcotest.(check bool) "clean fabric" true
    (Plan.link_factors quiet ~now:1.0 = (1.0, 1.0));
  check_float "no stragglers" 1.0 (Plan.straggler_slowdown quiet ~now:1.0)

let test_plan_queries () =
  let p = Plan.generate ~seed:42 Plan.default_config in
  let failures = Plan.node_failures p in
  Alcotest.(check bool) "seed 42 schedules failures" true (failures <> []);
  (* sorted by time *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Plan.at <= b.Plan.at && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "failures sorted" true (sorted failures);
  (* next_node_failure is strictly-after *)
  let f0 = List.hd failures in
  (match Plan.next_node_failure p ~after:(-1.0) with
  | Some f -> check_float "first failure" f0.Plan.at f.Plan.at
  | None -> Alcotest.fail "expected a failure");
  (match Plan.next_node_failure p ~after:f0.Plan.at with
  | Some f -> Alcotest.(check bool) "strictly after" true (f.Plan.at > f0.Plan.at)
  | None -> ());
  Alcotest.(check bool) "none after the horizon" true
    (Plan.next_node_failure p ~after:Plan.default_config.horizon_s = None);
  (* the struck node is down during its repair window, up after *)
  Alcotest.(check bool) "down during repair" true
    (Plan.node_down p ~node:f0.Plan.node ~now:(f0.Plan.at +. 1e-6));
  Alcotest.(check bool) "up before the failure" false
    (Plan.node_down p ~node:f0.Plan.node ~now:(f0.Plan.at -. 1e-6));
  (* kernel faults over the full horizon match the counts *)
  let _, _, _, kf = Plan.counts p in
  Alcotest.(check int) "kernel faults windowed" kf
    (Plan.kernel_faults_in p ~a:(-1.0) ~b:Plan.default_config.horizon_s)

let test_for_run_scaling () =
  (* the derived plan targets ~4 expected failures per run at
     intensity 1: mtbf should be within a factor of a few of ideal/4 *)
  let p = Plan.for_run (Plan.spec 42) ~ideal_s:400.0 ~nodes:64 in
  let nf, _, _, _ = Plan.counts p in
  Alcotest.(check bool) "some failures scheduled" true (nf >= 1);
  let p2 = Plan.for_run (Plan.spec 42) ~ideal_s:400.0 ~nodes:64 in
  Alcotest.(check bool) "derivation deterministic" true
    (Plan.node_failures p = Plan.node_failures p2);
  let hot = Plan.for_run (Plan.spec ~intensity:8.0 42) ~ideal_s:400.0 ~nodes:64 in
  let nf_hot, _, _, _ = Plan.counts hot in
  Alcotest.(check bool) "intensity raises the hazard" true (nf_hot > nf)

(* --- retry --- *)

let test_backoff_deterministic () =
  let seq seed =
    let rng = Icoe_util.Rng.create seed in
    List.map
      (fun attempt -> Retry.backoff_s Retry.default_policy ~rng ~attempt)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list (float 1e-12))) "same rng, same backoffs"
    (seq 5) (seq 5);
  (* geometric growth holds despite jitter (25% < x2 growth) *)
  (match seq 5 with
  | [ a; b; c; d ] ->
      Alcotest.(check bool) "growing" true (a < b && b < c && c < d)
  | _ -> Alcotest.fail "expected 4 delays");
  Alcotest.(check bool) "different rng differs" true (seq 5 <> seq 6)

let test_retry_gives_up () =
  let rng = Icoe_util.Rng.create 3 in
  let charged = ref 0.0 in
  let tries = ref 0 in
  let result, o =
    Retry.run ~rng ~charge:(fun dt -> charged := !charged +. dt)
      (fun ~attempt ->
        incr tries;
        Alcotest.(check int) "attempt number" !tries attempt;
        Error "down")
  in
  Alcotest.(check bool) "last error returned" true (result = Error "down");
  Alcotest.(check int) "bounded attempts"
    Retry.default_policy.Retry.max_attempts o.Retry.attempts;
  Alcotest.(check bool) "gave up" true o.Retry.gave_up;
  check_float "charge equals backoff total" !charged o.Retry.backoff_total_s;
  Alcotest.(check bool) "backoff actually charged" true (!charged > 0.0)

let test_retry_succeeds () =
  let rng = Icoe_util.Rng.create 3 in
  let result, o =
    Retry.run ~rng ~charge:ignore (fun ~attempt ->
        if attempt < 3 then Error () else Ok "up")
  in
  Alcotest.(check bool) "value returned" true (result = Ok "up");
  Alcotest.(check int) "stopped at success" 3 o.Retry.attempts;
  Alcotest.(check bool) "did not give up" false o.Retry.gave_up

(* --- Young/Daly --- *)

let test_young_daly () =
  check_float "tau = sqrt(2 delta M)"
    (sqrt (2.0 *. 60.0 *. 7200.0))
    (Checkpoint.young_daly_s ~mtbf_s:7200.0 ~checkpoint_cost_s:60.0);
  Alcotest.(check int) "rounded to steps" 9
    (Checkpoint.young_daly_steps ~mtbf_s:7200.0 ~checkpoint_cost_s:60.0
       ~step_cost_s:100.0);
  (* never below one step, even for brutal fault rates *)
  Alcotest.(check int) "at least 1" 1
    (Checkpoint.young_daly_steps ~mtbf_s:1.0 ~checkpoint_cost_s:1e-6
       ~step_cost_s:10.0)

(* --- checkpoint/restart driver --- *)

let test_checkpoint_accounting () =
  (* drive a trivial engine (a step counter) through a hot plan and
     check the report invariant achieved = ideal + overhead + lost *)
  let plan = Plan.for_run (Plan.spec ~intensity:4.0 42) ~ideal_s:100.0 ~nodes:16 in
  let state = ref 0 in
  let saved = ref 0 in
  let rep =
    Checkpoint.run ~plan ~restart_cost_s:0.5 ~step_cost_s:1.0
      ~checkpoint_cost_s:0.25 ~interval:10 ~steps:100
      ~snapshot:(fun () -> !state)
      ~restore:(fun s ->
        saved := !saved + 1;
        state := s)
      ~step:(fun i ->
        Alcotest.(check int) "steps arrive in replay order" i !state;
        incr state)
      ()
  in
  Alcotest.(check int) "engine reached the end" 100 !state;
  Alcotest.(check bool) "failures struck" true (rep.Checkpoint.injected >= 1);
  Alcotest.(check int) "every failure recovered"
    rep.Checkpoint.injected rep.Checkpoint.recovered;
  Alcotest.(check int) "restore called per recovery"
    rep.Checkpoint.recovered !saved;
  check_float "ideal" 100.0 rep.Checkpoint.ideal_s;
  Alcotest.(check (float 1e-6)) "achieved = ideal + overhead + lost"
    rep.Checkpoint.achieved_s
    (rep.Checkpoint.ideal_s +. rep.Checkpoint.checkpoint_overhead_s
    +. rep.Checkpoint.lost_work_s);
  Alcotest.(check bool) "inflation > 1" true (Checkpoint.inflation rep > 1.0)

let test_checkpoint_failure_free () =
  let quiet =
    Plan.generate ~seed:1
      { Plan.default_config with node_mtbf_s = infinity }
  in
  let rep =
    Checkpoint.run ~plan:quiet ~step_cost_s:1.0 ~checkpoint_cost_s:0.5
      ~interval:25 ~steps:100
      ~snapshot:(fun () -> ()) ~restore:(fun () -> ()) ~step:ignore ()
  in
  Alcotest.(check int) "nothing injected" 0 rep.Checkpoint.injected;
  (* 100 steps, interval 25, no checkpoint after the final step *)
  Alcotest.(check int) "periodic checkpoints" 3 rep.Checkpoint.checkpoints;
  check_float "only checkpoint overhead paid" 101.5 rep.Checkpoint.achieved_s;
  check_float "no lost work" 0.0 rep.Checkpoint.lost_work_s

let test_checkpoint_tiny_mtbf_end_to_end () =
  (* regression for the interval guard: a brutal fault rate drives the
     Young/Daly period below one step; young_daly_steps must clamp to 1
     (not 0 — interval 0 used to raise) and the driver must still carry
     a real engine to the exact fault-free answer under a storm of
     failures *)
  let step_cost_s = 1.0 in
  let interval =
    Checkpoint.young_daly_steps ~mtbf_s:3.0 ~checkpoint_cost_s:0.01
      ~step_cost_s
  in
  Alcotest.(check int) "brutal MTBF clamps to every-step" 1 interval;
  let plan = Plan.for_run (Plan.spec ~intensity:12.0 7) ~ideal_s:40.0 ~nodes:64 in
  let state = ref 0 in
  let rep =
    Checkpoint.run ~plan ~restart_cost_s:0.2 ~step_cost_s
      ~checkpoint_cost_s:0.01 ~interval ~steps:40
      ~snapshot:(fun () -> !state)
      ~restore:(fun s -> state := s)
      ~step:(fun i ->
        Alcotest.(check int) "replay order preserved" i !state;
        incr state)
      ()
  in
  Alcotest.(check int) "engine reached the end" 40 !state;
  Alcotest.(check bool) "storm struck" true (rep.Checkpoint.injected >= 1);
  Alcotest.(check int) "every failure recovered" rep.Checkpoint.injected
    rep.Checkpoint.recovered;
  Alcotest.(check (float 1e-6)) "achieved = ideal + overhead + lost"
    rep.Checkpoint.achieved_s
    (rep.Checkpoint.ideal_s +. rep.Checkpoint.checkpoint_overhead_s
    +. rep.Checkpoint.lost_work_s)

let test_checkpoint_deterministic () =
  let run () =
    let plan = Plan.for_run (Plan.spec 9) ~ideal_s:64.0 ~nodes:8 in
    Checkpoint.run ~plan ~step_cost_s:1.0 ~checkpoint_cost_s:0.25 ~interval:8
      ~steps:64 ~snapshot:(fun () -> ()) ~restore:(fun () -> ()) ~step:ignore ()
  in
  Alcotest.(check bool) "identical reports across repeats" true (run () = run ())

(* --- engine recovery equality --- *)

let test_sw4_recovery_equality () =
  let plan, interval, rep, identical =
    Icoe.Harness_sw4.resilience_run (Plan.spec 42)
  in
  let nf, _, _, _ = Plan.counts plan in
  Alcotest.(check bool) "plan has failures" true (nf >= 1);
  Alcotest.(check bool) "interval positive" true (interval >= 1);
  Alcotest.(check bool) "failure injected" true (rep.Checkpoint.injected >= 1);
  Alcotest.(check bool) "failure recovered" true (rep.Checkpoint.recovered >= 1);
  Alcotest.(check bool) "recovered state bit-identical" true identical;
  (* determinism across repeats: the whole report must match *)
  let _, _, rep2, identical2 = Icoe.Harness_sw4.resilience_run (Plan.spec 42) in
  Alcotest.(check bool) "repeat run identical" true (rep = rep2 && identical2)

let test_cardioid_recovery_equality () =
  let _, interval, rep, identical =
    Icoe.Harness_cardioid.resilience_run (Plan.spec 42)
  in
  Alcotest.(check bool) "interval positive" true (interval >= 1);
  Alcotest.(check bool) "failure injected" true (rep.Checkpoint.injected >= 1);
  Alcotest.(check bool) "failure recovered" true (rep.Checkpoint.recovered >= 1);
  Alcotest.(check bool) "recovered state bit-identical" true identical

let test_ddcmd_snapshot_replay () =
  (* snapshot/restore of the full MD state: replaying the same steps
     from a snapshot reproduces positions and accumulators bitwise *)
  let mk () =
    let p = Ddcmd.Particles.create ~n:64 ~box:8.0 in
    Ddcmd.Particles.lattice_init p;
    Ddcmd.Particles.thermalize p ~rng:(Icoe_util.Rng.create 17) ~temp:1.2;
    Ddcmd.Engine.create ~dt:0.004
      ~potential:(Ddcmd.Potential.lennard_jones ~cutoff:2.5 ()) p
  in
  let e = mk () in
  Ddcmd.Engine.run e ~steps:5;
  let snap = Ddcmd.Engine.snapshot e in
  Ddcmd.Engine.run e ~steps:5;
  let x_ref = Icoe_util.Fbuf.to_array e.Ddcmd.Engine.p.Ddcmd.Particles.x in
  let energy_ref = Ddcmd.Engine.total_energy e in
  let steps_ref = e.Ddcmd.Engine.steps in
  Ddcmd.Engine.restore e snap;
  Alcotest.(check int) "step counter restored" 5 e.Ddcmd.Engine.steps;
  Ddcmd.Engine.run e ~steps:5;
  Alcotest.(check bool) "positions replay bitwise" true
    (Array.for_all2 Float.equal x_ref (Icoe_util.Fbuf.to_array e.Ddcmd.Engine.p.Ddcmd.Particles.x));
  Alcotest.(check bool) "energy replays bitwise" true
    (Float.equal energy_ref (Ddcmd.Engine.total_energy e));
  Alcotest.(check int) "step counter replays" steps_ref e.Ddcmd.Engine.steps

let test_cvode_resume () =
  (* a resumed BDF run agrees with an uninterrupted one to integrator
     tolerance (the restart re-establishes its own history, so the
     agreement is numerical, not bitwise) *)
  let rhs _t y = [| -.y.(0) |] in
  let lsolve = Sundials.Cvode.fd_dense_lsolve ~rhs in
  let direct =
    Sundials.Cvode.bdf ~rtol:1e-8 ~atol:1e-10 ~rhs ~lsolve ~t0:0.0
      ~y0:[| 1.0 |] 2.0
  in
  let half =
    Sundials.Cvode.bdf ~rtol:1e-8 ~atol:1e-10 ~rhs ~lsolve ~t0:0.0
      ~y0:[| 1.0 |] 1.0
  in
  let ck = Sundials.Cvode.checkpoint_of_result half in
  check_float "checkpoint captures t" 1.0 ck.Sundials.Cvode.ck_t;
  let resumed =
    Sundials.Cvode.resume_bdf ~rtol:1e-8 ~atol:1e-10 ~rhs ~lsolve ck 2.0
  in
  check_float "resumed reaches tstop" 2.0 resumed.Sundials.Cvode.t;
  let exact = exp (-2.0) in
  Alcotest.(check bool) "direct close to exact" true
    (Float.abs (direct.Sundials.Cvode.y.(0) -. exact) < 1e-5);
  Alcotest.(check bool) "resumed close to exact" true
    (Float.abs (resumed.Sundials.Cvode.y.(0) -. exact) < 1e-5);
  (* checkpoint vector is a copy, not an alias *)
  let ck2 = Sundials.Cvode.checkpoint ~t:half.Sundials.Cvode.t ~y:half.Sundials.Cvode.y in
  ck2.Sundials.Cvode.ck_y.(0) <- 99.0;
  Alcotest.(check bool) "checkpoint copies y" true
    (half.Sundials.Cvode.y.(0) <> 99.0)

(* --- inject + fcluster --- *)

let test_inject_clean_plan_is_identity () =
  let quiet =
    Plan.generate ~seed:1
      { Plan.default_config with
        link_mtbf_s = infinity; straggler_mtbf_s = infinity;
        kernel_fault_mtbf_s = infinity }
  in
  let l = Hwsim.Link.nvlink2 in
  check_float "clean transfer = base model"
    (Hwsim.Link.transfer_time l ~bytes:1e6)
    (F.Inject.transfer_time quiet ~now:10.0 l ~bytes:1e6);
  check_float "empty transfer still free" 0.0
    (F.Inject.transfer_time quiet ~now:10.0 l ~bytes:0.0);
  let d = Hwsim.Device.v100 in
  let k = Hwsim.Kernel.make ~name:"axpy" ~flops:1e9 ~bytes:1.2e10 () in
  check_float "clean kernel = roofline"
    (Hwsim.Roofline.time d k)
    (F.Inject.kernel_time quiet ~now:10.0 d k);
  let total, faults = F.Inject.kernel_time_with_faults quiet ~now:10.0 d k in
  Alcotest.(check int) "no transient faults" 0 faults;
  check_float "no re-execution" (Hwsim.Roofline.time d k) total

let test_inject_degradation_stretches () =
  (* a plan with hot links must make some transfer cost more *)
  let p =
    Plan.generate ~seed:5
      { Plan.default_config with link_mtbf_s = 50.0; link_degraded_s = 100.0 }
  in
  let l = Hwsim.Link.ib_dual_edr in
  let base = Hwsim.Link.transfer_time l ~bytes:1e8 in
  let stretched = ref false in
  for i = 0 to 399 do
    let now = float_of_int i *. 10.0 in
    let t = F.Inject.transfer_time p ~now l ~bytes:1e8 in
    Alcotest.(check bool) "never cheaper than clean" true (t >= base -. 1e-12);
    if t > base *. 1.01 then stretched := true
  done;
  Alcotest.(check bool) "some window degraded" true !stretched

let test_fcluster_deterministic () =
  let job () =
    let plan = Plan.for_run (Plan.spec 42) ~ideal_s:60.0 ~nodes:16 in
    let fc = F.Fcluster.create plan (Sparkle.Cluster.optimized_config ~nodes:16 ()) in
    for _ = 1 to 30 do
      F.Fcluster.charge_compute fc ~flops:2e12;
      F.Fcluster.charge_shuffle fc ~bytes:1.5e9;
      F.Fcluster.charge_aggregate fc ~bytes_per_node:2e7
    done;
    (F.Fcluster.elapsed fc, F.Fcluster.stats fc)
  in
  let e1, s1 = job () and e2, s2 = job () in
  Alcotest.(check bool) "elapsed bit-identical" true (Float.equal e1 e2);
  Alcotest.(check bool) "stats identical" true (s1 = s2);
  Alcotest.(check bool) "recoveries bounded by injections" true
    (s1.F.Fcluster.recovered + s1.F.Fcluster.gave_up = s1.F.Fcluster.injected)

(* --- context --- *)

let test_context_scoping () =
  Alcotest.(check bool) "empty by default" true (F.Context.current () = None);
  let spec = Plan.spec ~intensity:2.0 7 in
  let seen =
    F.Context.with_spec spec (fun () ->
        let inner = Plan.spec 8 in
        let nested =
          F.Context.with_spec inner (fun () -> F.Context.current ())
        in
        Alcotest.(check bool) "nested spec wins" true (nested = Some inner);
        F.Context.current ())
  in
  Alcotest.(check bool) "spec visible in scope" true (seen = Some spec);
  Alcotest.(check bool) "restored after" true (F.Context.current () = None);
  (* exception-safe *)
  (try F.Context.with_spec spec (fun () -> failwith "boom") with _ -> ());
  Alcotest.(check bool) "restored after raise" true (F.Context.current () = None)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "determinism" `Quick test_plan_determinism;
          Alcotest.test_case "class independence" `Quick
            test_plan_class_independence;
          Alcotest.test_case "disabled classes" `Quick test_plan_disabled_classes;
          Alcotest.test_case "queries" `Quick test_plan_queries;
          Alcotest.test_case "for_run scaling" `Quick test_for_run_scaling;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff deterministic" `Quick
            test_backoff_deterministic;
          Alcotest.test_case "gives up" `Quick test_retry_gives_up;
          Alcotest.test_case "succeeds" `Quick test_retry_succeeds;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "young/daly" `Quick test_young_daly;
          Alcotest.test_case "accounting invariant" `Quick
            test_checkpoint_accounting;
          Alcotest.test_case "failure-free" `Quick test_checkpoint_failure_free;
          Alcotest.test_case "tiny-MTBF end to end" `Quick
            test_checkpoint_tiny_mtbf_end_to_end;
          Alcotest.test_case "deterministic" `Quick test_checkpoint_deterministic;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "sw4 bit-identical" `Slow test_sw4_recovery_equality;
          Alcotest.test_case "cardioid bit-identical" `Slow
            test_cardioid_recovery_equality;
          Alcotest.test_case "ddcmd snapshot replay" `Quick
            test_ddcmd_snapshot_replay;
          Alcotest.test_case "cvode resume" `Quick test_cvode_resume;
        ] );
      ( "inject",
        [
          Alcotest.test_case "clean plan identity" `Quick
            test_inject_clean_plan_is_identity;
          Alcotest.test_case "degradation stretches" `Quick
            test_inject_degradation_stretches;
          Alcotest.test_case "fcluster deterministic" `Quick
            test_fcluster_deterministic;
        ] );
      ( "context",
        [ Alcotest.test_case "scoping" `Quick test_context_scoping ] );
    ]
