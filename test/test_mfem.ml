(* Tests for the MFEM analog: quadrature, bases, meshes, the diffusion
   operator (full vs partial assembly), LOR preconditioning and the
   integrated nonlinear diffusion driver. *)

let check_float = Alcotest.(check (float 1e-9))

(* --- quadrature --- *)

let test_gauss_legendre_exactness () =
  (* n-point Gauss integrates x^k exactly for k <= 2n-1 *)
  let n = 4 in
  let pts, wts = Mfem.Quadrature.gauss_legendre n in
  let integrate k =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. (wts.(i) *. (pts.(i) ** float_of_int k))
    done;
    !s
  in
  let exact k = if k mod 2 = 1 then 0.0 else 2.0 /. float_of_int (k + 1) in
  for k = 0 to (2 * n) - 1 do
    Alcotest.(check (float 1e-12)) (Fmt.str "x^%d" k) (exact k) (integrate k)
  done

let test_gauss_lobatto_endpoints_and_exactness () =
  let n = 5 in
  let pts, wts = Mfem.Quadrature.gauss_lobatto n in
  check_float "left endpoint" (-1.0) pts.(0);
  check_float "right endpoint" 1.0 pts.(n - 1);
  let integrate k =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. (wts.(i) *. (pts.(i) ** float_of_int k))
    done;
    !s
  in
  let exact k = if k mod 2 = 1 then 0.0 else 2.0 /. float_of_int (k + 1) in
  for k = 0 to (2 * n) - 3 do
    Alcotest.(check (float 1e-11)) (Fmt.str "x^%d" k) (exact k) (integrate k)
  done

let test_quadrature_points_sorted () =
  (* regression for the typed float sort in gauss_lobatto: node arrays
     come back strictly ascending, symmetric, and with positive weights
     at every order *)
  List.iter
    (fun (name, rule, lo) ->
      for n = lo to 12 do
        let pts, wts = rule n in
        for i = 1 to n - 1 do
          Alcotest.(check bool)
            (Fmt.str "%s n=%d ascending at %d" name n i)
            true
            (pts.(i - 1) < pts.(i))
        done;
        for i = 0 to n - 1 do
          Alcotest.(check (float 1e-10))
            (Fmt.str "%s n=%d symmetric at %d" name n i)
            (-.pts.(i))
            pts.(n - 1 - i);
          Alcotest.(check bool)
            (Fmt.str "%s n=%d weight %d positive" name n i)
            true (wts.(i) > 0.0)
        done
      done)
    [
      ("gauss", Mfem.Quadrature.gauss_legendre, 1);
      ("lobatto", Mfem.Quadrature.gauss_lobatto, 2);
    ]

let test_weights_sum_to_two () =
  for n = 2 to 8 do
    let _, wgl = Mfem.Quadrature.gauss_legendre n in
    let _, wlo = Mfem.Quadrature.gauss_lobatto n in
    Alcotest.(check (float 1e-12)) "GL weights" 2.0 (Icoe_util.Stats.sum wgl);
    Alcotest.(check (float 1e-12)) "GLL weights" 2.0 (Icoe_util.Stats.sum wlo)
  done

(* --- basis --- *)

let test_basis_partition_of_unity () =
  let b = Mfem.Basis.create 4 in
  for q = 0 to Mfem.Basis.nq b - 1 do
    let s = Icoe_util.Stats.sum b.Mfem.Basis.b.(q) in
    Alcotest.(check (float 1e-12)) "sum phi = 1" 1.0 s;
    let ds = Icoe_util.Stats.sum b.Mfem.Basis.g.(q) in
    Alcotest.(check (float 1e-10)) "sum phi' = 0" 0.0 ds
  done

let test_basis_collocated_kronecker () =
  let b = Mfem.Basis.create_collocated 3 in
  for q = 0 to 3 do
    for i = 0 to 3 do
      Alcotest.(check (float 1e-12)) "kronecker"
        (if q = i then 1.0 else 0.0)
        b.Mfem.Basis.b.(q).(i)
    done
  done

let test_basis_reproduces_polynomials () =
  (* order-p basis interpolates x^p exactly at the quadrature points *)
  let p = 3 in
  let b = Mfem.Basis.create p in
  let coeffs = Array.map (fun x -> x ** 3.0) b.Mfem.Basis.nodes in
  for q = 0 to Mfem.Basis.nq b - 1 do
    let v = ref 0.0 and dv = ref 0.0 in
    for i = 0 to p do
      v := !v +. (b.Mfem.Basis.b.(q).(i) *. coeffs.(i));
      dv := !dv +. (b.Mfem.Basis.g.(q).(i) *. coeffs.(i))
    done;
    let x = b.Mfem.Basis.qpts.(q) in
    Alcotest.(check (float 1e-10)) "value" (x ** 3.0) !v;
    Alcotest.(check (float 1e-10)) "derivative" (3.0 *. (x ** 2.0)) !dv
  done

(* --- mesh --- *)

let test_mesh_dof_counts () =
  let m = Mfem.Mesh.create ~nx:4 ~ny:3 ~p:2 () in
  Alcotest.(check int) "elements" 12 (Mfem.Mesh.num_elements m);
  Alcotest.(check int) "dofs" (9 * 7) (Mfem.Mesh.num_dofs m)

let test_mesh_shared_dofs () =
  (* adjacent elements share the dofs on their common edge *)
  let m = Mfem.Mesh.create ~nx:2 ~ny:1 ~p:3 () in
  for j = 0 to 3 do
    Alcotest.(check int) "shared edge dof"
      (Mfem.Mesh.global_dof m ~ex:0 ~ey:0 ~i:3 ~j)
      (Mfem.Mesh.global_dof m ~ex:1 ~ey:0 ~i:0 ~j)
  done

let test_mesh_boundary () =
  let m = Mfem.Mesh.create ~nx:3 ~ny:3 ~p:1 () in
  let nb = List.length (Mfem.Mesh.boundary_dofs m) in
  (* 4x4 lattice: 12 boundary points *)
  Alcotest.(check int) "boundary count" 12 nb

let test_mesh_gather_scatter_roundtrip () =
  let m = Mfem.Mesh.create ~nx:2 ~ny:2 ~p:2 () in
  let u = Array.init (Mfem.Mesh.num_dofs m) float_of_int in
  let local = Array.make 9 0.0 in
  Mfem.Mesh.gather m u ~ex:1 ~ey:1 local;
  check_float "gathered corner"
    (float_of_int (Mfem.Mesh.global_dof m ~ex:1 ~ey:1 ~i:0 ~j:0))
    local.(0);
  let y = Array.make (Mfem.Mesh.num_dofs m) 0.0 in
  Mfem.Mesh.scatter_add m local ~ex:1 ~ey:1 y;
  check_float "scattered back" local.(4)
    y.(Mfem.Mesh.global_dof m ~ex:1 ~ey:1 ~i:1 ~j:1)

(* --- diffusion operator --- *)

let test_pa_matches_full_assembly () =
  (* the paper's PA rewrite is only valid because it computes the same
     operator: check K_pa u = K_fa u on random vectors for several p *)
  List.iter
    (fun p ->
      let mesh = Mfem.Mesh.create ~nx:3 ~ny:2 ~p () in
      let basis = Mfem.Basis.create p in
      let kappa ~x ~y = 1.0 +. (0.5 *. x) +. (0.25 *. y *. y) in
      let a = Mfem.Diffusion.assemble ~kappa mesh basis in
      let pa = Mfem.Diffusion.Pa.setup ~kappa mesh basis in
      let rng = Icoe_util.Rng.create (100 + p) in
      let n = Mfem.Mesh.num_dofs mesh in
      let u = Array.init n (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
      let y_fa = Linalg.Csr.spmv a u in
      let y_pa = Array.make n 0.0 in
      Mfem.Diffusion.Pa.apply pa u y_pa;
      Alcotest.(check bool)
        (Fmt.str "PA = FA at p=%d" p)
        true
        (Icoe_util.Stats.max_abs_diff y_fa y_pa < 1e-10))
    [ 1; 2; 3; 4 ]

let test_operator_kernel_is_laplacian () =
  (* constant function is in the kernel of the (unconstrained) operator *)
  let mesh = Mfem.Mesh.create ~nx:4 ~ny:4 ~p:3 () in
  let basis = Mfem.Basis.create 3 in
  let pa = Mfem.Diffusion.Pa.setup mesh basis in
  let n = Mfem.Mesh.num_dofs mesh in
  let u = Array.make n 1.0 in
  let y = Array.make n 0.0 in
  Mfem.Diffusion.Pa.apply pa u y;
  Alcotest.(check bool) "K 1 = 0" true (Linalg.Vec.nrm_inf y < 1e-10)

let test_operator_spd () =
  let mesh = Mfem.Mesh.create ~nx:3 ~ny:3 ~p:2 () in
  let basis = Mfem.Basis.create 2 in
  let pa = Mfem.Diffusion.Pa.setup mesh basis in
  let n = Mfem.Mesh.num_dofs mesh in
  let rng = Icoe_util.Rng.create 31 in
  for _ = 1 to 10 do
    let u = Array.init n (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
    let y = Array.make n 0.0 in
    Mfem.Diffusion.Pa.apply pa u y;
    Alcotest.(check bool) "u^T K u >= 0" true (Linalg.Vec.dot u y >= -1e-10)
  done

let test_poisson_convergence () =
  (* solve -u'' = f with exact solution sin(pi x) sin(pi y); higher p or
     finer mesh must reduce the error *)
  let solve n p =
    let mesh = Mfem.Mesh.create ~nx:n ~ny:n ~p () in
    let basis = Mfem.Basis.create p in
    let cb = Mfem.Basis.create_collocated p in
    let a0 = Mfem.Diffusion.assemble mesh basis in
    let bdofs = Mfem.Mesh.boundary_dofs mesh in
    let a = Mfem.Diffusion.eliminate_dirichlet a0 bdofs in
    let ndof = Mfem.Mesh.num_dofs mesh in
    (* rhs: f = 2 pi^2 sin(pi x) sin(pi y), via diagonal mass *)
    let mass = Mfem.Diffusion.mass_diagonal mesh cb in
    let isb = Array.make ndof false in
    List.iter (fun g -> isb.(g) <- true) bdofs;
    let b =
      Array.init ndof (fun g ->
          if isb.(g) then 0.0
          else
            let x, y = Mfem.Mesh.dof_coords mesh cb.Mfem.Basis.nodes g in
            2.0 *. Float.pi *. Float.pi
            *. sin (Float.pi *. x)
            *. sin (Float.pi *. y)
            *. mass.(g))
    in
    let r =
      Linalg.Krylov.cg ~tol:1e-12 ~max_iter:5000 ~op:(Linalg.Csr.spmv a) b
        (Array.make ndof 0.0)
    in
    (* max error at dofs *)
    let err = ref 0.0 in
    Array.iteri
      (fun g v ->
        let x, y = Mfem.Mesh.dof_coords mesh cb.Mfem.Basis.nodes g in
        let exact = sin (Float.pi *. x) *. sin (Float.pi *. y) in
        err := max !err (Float.abs (v -. exact)))
      r.Linalg.Krylov.x;
    !err
  in
  let e_coarse = solve 4 2 in
  let e_fine = solve 8 2 in
  let e_high = solve 4 4 in
  Alcotest.(check bool) "h-refinement converges" true (e_fine < e_coarse /. 4.0);
  Alcotest.(check bool) "p-refinement converges faster" true (e_high < e_coarse /. 8.0);
  Alcotest.(check bool) "errors are small" true (e_coarse < 0.01)

let test_pa_storage_beats_fa_at_high_order () =
  let mesh = Mfem.Mesh.create ~nx:8 ~ny:8 ~p:8 () in
  let basis = Mfem.Basis.create 8 in
  let pa = Mfem.Diffusion.Pa.setup mesh basis in
  let a = Mfem.Diffusion.assemble mesh basis in
  Alcotest.(check bool) "PA memory much smaller at p=8" true
    (Mfem.Diffusion.Pa.storage_bytes pa
    < Mfem.Diffusion.fa_storage_bytes a /. 4.0)

let test_mass_diagonal_integrates_volume () =
  let mesh = Mfem.Mesh.create ~lx:2.0 ~ly:3.0 ~nx:4 ~ny:4 ~p:3 () in
  let cb = Mfem.Basis.create_collocated 3 in
  let m = Mfem.Diffusion.mass_diagonal mesh cb in
  Alcotest.(check (float 1e-10)) "sum M = area" 6.0 (Icoe_util.Stats.sum m)

let test_specialized_apply_matches () =
  (* the "JIT" unrolled p=2 kernel must equal the generic path exactly *)
  let mesh = Mfem.Mesh.create ~nx:5 ~ny:4 ~p:2 () in
  let basis = Mfem.Basis.create 2 in
  let kappa ~x ~y = 1.0 +. x +. (y *. y) in
  let pa = Mfem.Diffusion.Pa.setup ~kappa mesh basis in
  let n = Mfem.Mesh.num_dofs mesh in
  let rng = Icoe_util.Rng.create 77 in
  for _ = 1 to 5 do
    let u = Array.init n (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
    let y1 = Array.make n 0.0 and y2 = Array.make n 0.0 in
    Mfem.Diffusion.Pa.apply pa u y1;
    Mfem.Diffusion.Pa.apply_specialized pa u y2;
    Alcotest.(check bool) "identical" true
      (Icoe_util.Stats.max_abs_diff y1 y2 < 1e-13)
  done;
  (* falls back to generic for other orders *)
  let mesh3 = Mfem.Mesh.create ~nx:3 ~ny:3 ~p:3 () in
  let basis3 = Mfem.Basis.create 3 in
  let pa3 = Mfem.Diffusion.Pa.setup mesh3 basis3 in
  let n3 = Mfem.Mesh.num_dofs mesh3 in
  let u = Array.init n3 (fun i -> float_of_int i) in
  let y1 = Array.make n3 0.0 and y2 = Array.make n3 0.0 in
  Mfem.Diffusion.Pa.apply pa3 u y1;
  Mfem.Diffusion.Pa.apply_specialized pa3 u y2;
  Alcotest.(check bool) "fallback identical" true
    (Icoe_util.Stats.max_abs_diff y1 y2 = 0.0)

let test_pa_mass_operator () =
  (* consistent mass: symmetric, positive, integrates the constant to the
     domain area, and agrees with the lumped diagonal on totals *)
  let mesh = Mfem.Mesh.create ~lx:2.0 ~ly:1.5 ~nx:4 ~ny:3 ~p:3 () in
  let basis = Mfem.Basis.create 3 in
  let m = Mfem.Diffusion.Pa_mass.setup mesh basis in
  let n = Mfem.Mesh.num_dofs mesh in
  let ones = Array.make n 1.0 in
  let y = Array.make n 0.0 in
  Mfem.Diffusion.Pa_mass.apply m ones y;
  (* sum over M 1 = area *)
  Alcotest.(check (float 1e-10)) "total mass = area" 3.0 (Icoe_util.Stats.sum y);
  (* symmetry: u^T M v = v^T M u on random vectors *)
  let rng = Icoe_util.Rng.create 88 in
  let u = Array.init n (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let v = Array.init n (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let mu = Array.make n 0.0 and mv = Array.make n 0.0 in
  Mfem.Diffusion.Pa_mass.apply m u mu;
  Mfem.Diffusion.Pa_mass.apply m v mv;
  Alcotest.(check (float 1e-10)) "symmetric"
    (Linalg.Vec.dot u mv) (Linalg.Vec.dot v mu);
  Alcotest.(check bool) "positive definite" true (Linalg.Vec.dot u mu > 0.0)

(* --- LOR --- *)

let test_lor_spectrally_close () =
  (* LOR matrix must be a good preconditioner for the high-order operator:
     PCG with LOR-AMG converges in few iterations *)
  let p = 4 in
  let mesh = Mfem.Mesh.create ~nx:6 ~ny:6 ~p () in
  let basis = Mfem.Basis.create p in
  let a0 = Mfem.Diffusion.assemble mesh basis in
  let bdofs = Mfem.Mesh.boundary_dofs mesh in
  let a = Mfem.Diffusion.eliminate_dirichlet a0 bdofs in
  let lor_mat = Mfem.Lor.assemble mesh basis in
  let amg = Hypre.Boomeramg.setup lor_mat in
  let n = Mfem.Mesh.num_dofs mesh in
  let isb = Array.make n false in
  List.iter (fun g -> isb.(g) <- true) bdofs;
  let rng = Icoe_util.Rng.create 41 in
  let b = Array.init n (fun g -> if isb.(g) then 0.0 else Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let r =
    Linalg.Krylov.pcg ~tol:1e-8 ~max_iter:200 ~op:(Linalg.Csr.spmv a)
      ~precond:(Hypre.Boomeramg.precond amg) b (Array.make n 0.0)
  in
  Alcotest.(check bool) "LOR-AMG-PCG converges" true r.Linalg.Krylov.converged;
  Alcotest.(check bool) "in few iterations" true (r.Linalg.Krylov.iters < 60)

let test_lor_kernel () =
  (* constants with zero boundary are NOT in the LOR kernel (Dirichlet
     eliminated), but interior row sums vanish for interior-only rows *)
  let mesh = Mfem.Mesh.create ~nx:4 ~ny:4 ~p:2 () in
  let basis = Mfem.Basis.create 2 in
  let lor_mat = Mfem.Lor.assemble mesh basis in
  let ones = Array.make (Mfem.Mesh.num_dofs mesh) 1.0 in
  let y = Linalg.Csr.spmv lor_mat ones in
  (* a deep-interior dof: row sum 0 *)
  let g = Mfem.Mesh.global_dof mesh ~ex:2 ~ey:2 ~i:1 ~j:1 in
  Alcotest.(check (float 1e-10)) "interior row sum" 0.0 y.(g)

(* --- nonlinear diffusion driver --- *)

let test_nldiff_runs_and_decays () =
  let r = Mfem.Nldiff.run ~n:4 ~p:2 ~tf:0.005 () in
  (* diffusion with zero boundary: energy decays from the initial sine *)
  let maxu = Linalg.Vec.nrm_inf r.Mfem.Nldiff.u in
  Alcotest.(check bool) "decayed below initial max" true (maxu < 1.0);
  Alcotest.(check bool) "still positive" true (maxu > 0.1);
  let c = r.Mfem.Nldiff.counters in
  Alcotest.(check bool) "did PCG work" true (c.Mfem.Nldiff.pcg_iters > 0);
  Alcotest.(check bool) "used the preconditioner" true (c.Mfem.Nldiff.vcycles > 0);
  Alcotest.(check bool) "steps recorded" true
    (r.Mfem.Nldiff.ode_stats.Sundials.Cvode.nsteps > 0)

let test_nldiff_matches_linear_limit () =
  (* with kappa ~ 1 (small amplitude), solution ~ heat equation:
     u(t) = exp(-2 pi^2 t) sin sin; check the decay factor at the center *)
  let tf = 0.004 in
  let amp = 1e-3 in
  let r =
    Mfem.Nldiff.run ~n:6 ~p:3 ~tf ~rtol:1e-7 ~atol:1e-11
      ~u0:(fun ~x ~y -> amp *. sin (Float.pi *. x) *. sin (Float.pi *. y))
      ()
  in
  let mesh = Mfem.Mesh.create ~nx:6 ~ny:6 ~p:3 () in
  let cb = Mfem.Basis.create_collocated 3 in
  (* find the dof nearest the center *)
  let best = ref 0 and bestd = ref infinity in
  Array.iteri
    (fun g _ ->
      let x, y = Mfem.Mesh.dof_coords mesh cb.Mfem.Basis.nodes g in
      let d = ((x -. 0.5) ** 2.0) +. ((y -. 0.5) ** 2.0) in
      if d < !bestd then begin
        bestd := d;
        best := g
      end)
    r.Mfem.Nldiff.u;
  let expected = amp *. exp (-2.0 *. Float.pi *. Float.pi *. tf) in
  Alcotest.(check bool) "matches heat-equation decay" true
    (Float.abs (r.Mfem.Nldiff.u.(!best) -. expected) < 0.02 *. amp)

let test_nldiff_gpu_speedup_shape () =
  (* Table 4's shape: the same run priced on V100 must beat serial P9 by a
     large factor at 1M-scale; here we just assert the pricing machinery
     produces a sensible speedup > 1 on a small run *)
  let r = Mfem.Nldiff.run ~n:8 ~p:2 ~tf:0.002 () in
  let price ?scale d pol =
    let f, p, s = Mfem.Nldiff.price ?scale r ~device:d ~policy:pol in
    (f, p, s, f +. p +. s)
  in
  let f_c, p_c, s_c, _ = price Hwsim.Device.power9 Prog.Policy.Serial in
  Alcotest.(check bool) "phases positive" true
    (f_c > 0.0 && p_c > 0.0 && s_c > 0.0);
  (* at paper scale (~1M unknowns) the GPU wins decisively *)
  let scale = 1.0e6 /. float_of_int r.Mfem.Nldiff.ndof in
  let _, _, _, cpu = price ~scale Hwsim.Device.power9 Prog.Policy.Serial in
  let _, _, _, gpu = price ~scale Hwsim.Device.v100 Prog.Policy.Cuda in
  Alcotest.(check bool) "gpu faster at 1M dofs" true (gpu < cpu /. 5.0);
  (* at tiny scale the GPU's launch overhead loses: the paper's speedups
     shrink toward small problems (Table 4 rows) *)
  let _, _, _, cpu_s = price Hwsim.Device.power9 Prog.Policy.Serial in
  let _, _, _, gpu_s = price Hwsim.Device.v100 Prog.Policy.Cuda in
  Alcotest.(check bool) "small-problem speedup smaller" true
    (gpu_s /. cpu_s > gpu /. cpu)

(* --- 3D --- *)

let test_3d_kernel_and_spd () =
  let mesh = Mfem.Fem3d.Mesh3.create ~nx:3 ~ny:2 ~nz:2 ~p:2 () in
  let basis = Mfem.Basis.create 2 in
  let pa = Mfem.Fem3d.Pa3.setup mesh basis in
  let n = Mfem.Fem3d.Mesh3.num_dofs mesh in
  let y = Array.make n 0.0 in
  (* constants in the kernel *)
  Mfem.Fem3d.Pa3.apply pa (Array.make n 1.0) y;
  Alcotest.(check bool) "K 1 = 0" true (Linalg.Vec.nrm_inf y < 1e-10);
  (* symmetric positive semidefinite on random vectors *)
  let rng = Icoe_util.Rng.create 61 in
  let u = Array.init n (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let v = Array.init n (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let ku = Array.make n 0.0 and kv = Array.make n 0.0 in
  Mfem.Fem3d.Pa3.apply pa u ku;
  Mfem.Fem3d.Pa3.apply pa v kv;
  Alcotest.(check (float 1e-9)) "symmetric" (Linalg.Vec.dot u kv) (Linalg.Vec.dot v ku);
  Alcotest.(check bool) "psd" true (Linalg.Vec.dot u ku >= -1e-10)

let test_3d_poisson_convergence () =
  (* manufactured solution sin(pi x) sin(pi y) sin(pi z):
     f = 3 pi^2 u; refine and watch the error drop *)
  let solve n p =
    let mesh = Mfem.Fem3d.Mesh3.create ~nx:n ~ny:n ~nz:n ~p () in
    let basis = Mfem.Basis.create p in
    let cb = Mfem.Basis.create_collocated p in
    let pa = Mfem.Fem3d.Pa3.setup mesh basis in
    let nd = Mfem.Fem3d.Mesh3.num_dofs mesh in
    let mass = Mfem.Fem3d.mass_diagonal3 mesh cb in
    let bd = Array.init nd (fun g -> Mfem.Fem3d.Mesh3.is_boundary mesh g) in
    let b =
      Array.init nd (fun g ->
          if bd.(g) then 0.0
          else
            let x, y, z = Mfem.Fem3d.Mesh3.dof_coords mesh cb.Mfem.Basis.nodes g in
            3.0 *. Float.pi *. Float.pi
            *. sin (Float.pi *. x) *. sin (Float.pi *. y) *. sin (Float.pi *. z)
            *. mass.(g))
    in
    let scratch = Array.make nd 0.0 in
    let op u =
      Mfem.Fem3d.Pa3.apply pa u scratch;
      Array.init nd (fun g -> if bd.(g) then u.(g) else scratch.(g))
    in
    let r = Linalg.Krylov.cg ~tol:1e-11 ~max_iter:4000 ~op b (Array.make nd 0.0) in
    let err = ref 0.0 in
    Array.iteri
      (fun g v ->
        let x, y, z = Mfem.Fem3d.Mesh3.dof_coords mesh cb.Mfem.Basis.nodes g in
        let exact = sin (Float.pi *. x) *. sin (Float.pi *. y) *. sin (Float.pi *. z) in
        err := max !err (Float.abs (v -. exact)))
      r.Linalg.Krylov.x;
    !err
  in
  let e_coarse = solve 2 2 in
  let e_fine = solve 4 2 in
  let e_high = solve 2 4 in
  Alcotest.(check bool)
    (Fmt.str "h-conv: %.2e -> %.2e" e_coarse e_fine)
    true (e_fine < e_coarse /. 3.0);
  Alcotest.(check bool)
    (Fmt.str "p-conv: %.2e -> %.2e" e_coarse e_high)
    true (e_high < e_coarse /. 5.0)

let test_3d_pa_storage_advantage () =
  (* in 3D the assembled matrix's (2p+1)^3 nonzeros per row dwarf the PA
     factors — the regime where the MFEM rewrite pays off hardest *)
  let mesh = Mfem.Fem3d.Mesh3.create ~nx:4 ~ny:4 ~nz:4 ~p:8 () in
  let basis = Mfem.Basis.create 8 in
  let pa = Mfem.Fem3d.Pa3.setup mesh basis in
  let ratio =
    Mfem.Fem3d.Pa3.fa_storage_bytes pa /. Mfem.Fem3d.Pa3.storage_bytes pa
  in
  Alcotest.(check bool) (Fmt.str "storage ratio %.0fx > 30x" ratio) true
    (ratio > 30.0);
  let w = Mfem.Fem3d.Pa3.work pa in
  Alcotest.(check bool) "work accounted" true (w.Hwsim.Kernel.flops > 0.0)

let () =
  Alcotest.run "mfem"
    [
      ( "quadrature",
        [
          Alcotest.test_case "gauss exactness" `Quick test_gauss_legendre_exactness;
          Alcotest.test_case "lobatto" `Quick test_gauss_lobatto_endpoints_and_exactness;
          Alcotest.test_case "points sorted" `Quick test_quadrature_points_sorted;
          Alcotest.test_case "weights sum" `Quick test_weights_sum_to_two;
        ] );
      ( "basis",
        [
          Alcotest.test_case "partition of unity" `Quick test_basis_partition_of_unity;
          Alcotest.test_case "collocated kronecker" `Quick test_basis_collocated_kronecker;
          Alcotest.test_case "reproduces polynomials" `Quick test_basis_reproduces_polynomials;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "dof counts" `Quick test_mesh_dof_counts;
          Alcotest.test_case "shared dofs" `Quick test_mesh_shared_dofs;
          Alcotest.test_case "boundary" `Quick test_mesh_boundary;
          Alcotest.test_case "gather/scatter" `Quick test_mesh_gather_scatter_roundtrip;
        ] );
      ( "diffusion",
        [
          Alcotest.test_case "pa = fa" `Quick test_pa_matches_full_assembly;
          Alcotest.test_case "kernel" `Quick test_operator_kernel_is_laplacian;
          Alcotest.test_case "spd" `Quick test_operator_spd;
          Alcotest.test_case "poisson convergence" `Quick test_poisson_convergence;
          Alcotest.test_case "pa storage" `Quick test_pa_storage_beats_fa_at_high_order;
          Alcotest.test_case "mass volume" `Quick test_mass_diagonal_integrates_volume;
          Alcotest.test_case "jit specialization" `Quick test_specialized_apply_matches;
          Alcotest.test_case "pa mass operator" `Quick test_pa_mass_operator;
        ] );
      ( "fem3d",
        [
          Alcotest.test_case "kernel + spd" `Quick test_3d_kernel_and_spd;
          Alcotest.test_case "poisson convergence" `Slow test_3d_poisson_convergence;
          Alcotest.test_case "storage advantage" `Quick test_3d_pa_storage_advantage;
        ] );
      ( "lor",
        [
          Alcotest.test_case "spectrally close" `Quick test_lor_spectrally_close;
          Alcotest.test_case "kernel" `Quick test_lor_kernel;
        ] );
      ( "nldiff",
        [
          Alcotest.test_case "runs and decays" `Quick test_nldiff_runs_and_decays;
          Alcotest.test_case "linear limit" `Quick test_nldiff_matches_linear_limit;
          Alcotest.test_case "gpu speedup shape" `Quick test_nldiff_gpu_speedup_shape;
        ] );
    ]
