(* Tests for the SW4 analog: grid/material, elastic operator, solver
   physics (wave speeds, stability, damping), and the performance-variant
   model. *)

module Fbuf = Icoe_util.Fbuf

let check_float = Alcotest.(check (float 1e-9))

let test_grid_material () =
  let g = Sw4.Grid.create ~nx:16 ~ny:16 ~h:10.0 in
  Sw4.Grid.homogeneous g ~rho:2000.0 ~vp:4000.0 ~vs:2000.0;
  check_float "p speed" 4000.0 (Sw4.Grid.p_speed g 5 5);
  check_float "s speed" 2000.0 (Sw4.Grid.s_speed g 5 5);
  check_float "max p" 4000.0 (Sw4.Grid.max_p_speed g);
  Alcotest.(check bool) "dt positive" true (Sw4.Grid.stable_dt g > 0.0)

let test_d1_exact_on_cubics () =
  (* the 4th-order stencil differentiates cubics exactly *)
  let g = Sw4.Grid.create ~nx:16 ~ny:16 ~h:0.5 in
  let f =
    Fbuf.init (16 * 16) (fun k ->
        let i = k mod 16 and j = k / 16 in
        let x = float_of_int i *. 0.5 and y = float_of_int j *. 0.5 in
        (x ** 3.0) +. (2.0 *. (y ** 3.0)) +. (x *. y))
  in
  let x = 5.0 *. 0.5 and y = 7.0 *. 0.5 in
  Alcotest.(check (float 1e-9)) "d/dx"
    ((3.0 *. x *. x) +. y)
    (Sw4.Elastic.d1x g f 5 7);
  Alcotest.(check (float 1e-9)) "d/dy"
    ((6.0 *. y *. y) +. x)
    (Sw4.Elastic.d1y g f 5 7)

let test_acceleration_zero_on_linear_field () =
  (* uniform strain (linear displacement) in a homogeneous medium has zero
     stress divergence *)
  let g = Sw4.Grid.create ~nx:24 ~ny:24 ~h:1.0 in
  Sw4.Grid.homogeneous g ~rho:1000.0 ~vp:2000.0 ~vs:1000.0;
  let n = 24 * 24 in
  let ux = Fbuf.init n (fun k -> 0.001 *. float_of_int (k mod 24)) in
  let uy = Fbuf.init n (fun k -> 0.002 *. float_of_int (k / 24)) in
  let ax = Fbuf.create n and ay = Fbuf.create n in
  let s = Sw4.Elastic.make_scratch g in
  Sw4.Elastic.acceleration g s ~ux ~uy ~ax ~ay;
  Alcotest.(check bool) "ax ~ 0" true (Linalg.Vec.nrm_inf (Fbuf.to_array ax) < 1e-8);
  Alcotest.(check bool) "ay ~ 0" true (Linalg.Vec.nrm_inf (Fbuf.to_array ay) < 1e-8)

let test_p_wave_speed () =
  (* point source in homogeneous medium: first arrival at a receiver at
     distance r gives the P speed within ~20% on a coarse grid *)
  let vp = 3000.0 and vs = 1500.0 in
  let h = 50.0 in
  let g = Sw4.Grid.create ~nx:120 ~ny:60 ~h in
  Sw4.Grid.homogeneous g ~rho:2000.0 ~vp ~vs;
  let f0 = 4.0 in
  let src =
    Sw4.Source.point_force ~i:20 ~j:30 ~fx:1e9 ~fy:0.0
      ~stf:(Sw4.Source.ricker ~f0 ~t0:(1.2 /. f0))
  in
  let rcv = Sw4.Solver.receiver ~i:90 ~j:30 in
  let solver = Sw4.Solver.create ~sources:[ src ] ~receivers:[ rcv ] g in
  let dist = float_of_int (90 - 20) *. h in
  let expected_arrival = (1.2 /. f0) +. (dist /. vp) in
  let steps = int_of_float (1.3 *. expected_arrival /. solver.Sw4.Solver.dt) in
  Sw4.Solver.run solver ~steps;
  (* peak-arrival time: the P pulse peaks at t0 + dist/vp *)
  let trace = List.rev rcv.Sw4.Solver.trace in
  let tpeak = ref 0.0 and peak = ref 0.0 in
  List.iter
    (fun (t, x, y) ->
      let v = sqrt ((x *. x) +. (y *. y)) in
      if v > !peak then begin
        peak := v;
        tpeak := t
      end)
    trace;
  Alcotest.(check bool) "wave arrived" true (!peak > 0.0);
  let v_measured = dist /. (!tpeak -. (1.2 /. f0)) in
  Alcotest.(check bool)
    (Fmt.str "measured %.0f vs vp %.0f" v_measured vp)
    true
    (v_measured > 0.85 *. vp && v_measured < 1.15 *. vp)

let test_stability_energy_bounded () =
  let g = Sw4.Grid.create ~nx:48 ~ny:48 ~h:100.0 in
  Sw4.Grid.homogeneous g ~rho:2500.0 ~vp:5000.0 ~vs:2500.0;
  let f0 = 2.0 in
  let src =
    Sw4.Source.point_force ~i:24 ~j:24 ~fx:1e9 ~fy:1e9
      ~stf:(Sw4.Source.ricker ~f0 ~t0:(1.0 /. f0))
  in
  let solver = Sw4.Solver.create ~sources:[ src ] g in
  Sw4.Solver.run solver ~steps:400;
  let e_mid = Sw4.Solver.energy_proxy solver in
  Sw4.Solver.run solver ~steps:800;
  let e_late = Sw4.Solver.energy_proxy solver in
  Alcotest.(check bool) "finite" true (Float.is_finite e_late);
  (* damping layers remove energy once the source is quiet *)
  Alcotest.(check bool) "energy decays after source" true (e_late < e_mid);
  Alcotest.(check bool) "fields finite" true
    (Array.for_all Float.is_finite (Fbuf.to_array solver.Sw4.Solver.ux))

let test_damping_profile_interior_unity () =
  let g = Sw4.Grid.create ~nx:64 ~ny:64 ~h:10.0 in
  Sw4.Grid.homogeneous g ~rho:2000.0 ~vp:3000.0 ~vs:1500.0;
  let s = Sw4.Solver.create g in
  check_float "interior taper 1" 1.0
    (Fbuf.get s.Sw4.Solver.damping (Sw4.Grid.idx g 32 32));
  Alcotest.(check bool) "wall taper < 1" true
    (Fbuf.get s.Sw4.Solver.damping (Sw4.Grid.idx g 0 32) < 1.0)

let test_ricker_properties () =
  check_float "peak at t0" 1.0 (Sw4.Source.ricker ~f0:2.0 ~t0:1.0 1.0);
  Alcotest.(check bool) "decays" true
    (Float.abs (Sw4.Source.ricker ~f0:2.0 ~t0:1.0 3.0) < 1e-6)

let test_temporal_convergence () =
  (* fixed grid, shrinking timestep: against a tiny-dt reference the
     error must fall clearly as dt halves (the cold-start u(-dt) ~ u(0)
     initialization contributes a first-order term, so we assert robust
     decrease rather than the asymptotic factor of 4) *)
  let nx = 48 in
  let solve cfl =
    let g = Sw4.Grid.create ~nx ~ny:nx ~h:100.0 in
    Sw4.Grid.homogeneous g ~rho:2000.0 ~vp:2000.0 ~vs:1000.0;
    let s = Sw4.Solver.create ~cfl ~damping_width:0 ~damping_strength:1.0 g in
    for j = 0 to nx - 1 do
      for i = 0 to nx - 1 do
        let k = Sw4.Grid.idx g i j in
        let x = float_of_int i /. float_of_int (nx - 1) in
        let y = float_of_int j /. float_of_int (nx - 1) in
        let v = 0.01 *. sin (Float.pi *. x) *. sin (Float.pi *. y) in
        Fbuf.set s.Sw4.Solver.ux k v;
        Fbuf.set s.Sw4.Solver.ux_prev k v
      done
    done;
    let tphys = 0.5 in
    (* choose cfl so steps divide tphys exactly *)
    let steps = int_of_float (Float.round (tphys /. s.Sw4.Solver.dt)) in
    let s = { s with Sw4.Solver.dt = tphys /. float_of_int steps } in
    Sw4.Solver.run s ~steps;
    Fbuf.get s.Sw4.Solver.ux (Sw4.Grid.idx g (nx / 2) (nx / 2))
  in
  let reference = solve 0.02 in
  let e_coarse = Float.abs (solve 0.4 -. reference) in
  let e_fine = Float.abs (solve 0.2 -. reference) in
  Alcotest.(check bool)
    (Fmt.str "dt halving shrinks error: %.2e -> %.2e" e_coarse e_fine)
    true
    (e_fine < 0.65 *. e_coarse)

(* --- scenario / performance --- *)

let test_hayward_basin_amplification () =
  let r = Sw4.Scenario.run_hayward ~nx:120 ~ny:72 ~h:100.0 ~steps:400 () in
  Alcotest.(check bool) "finite PGV" true
    (Array.for_all Float.is_finite r.Sw4.Scenario.pgv_surface);
  Alcotest.(check bool) "soft basin amplifies shaking" true
    r.Sw4.Scenario.basin_amplified;
  Alcotest.(check bool) "nonzero shaking" true
    (Icoe_util.Stats.sum r.Sw4.Scenario.pgv_surface > 0.0)

let test_variant_ordering () =
  (* Sec 4.9: shared-memory ~2x naive; RAJA ~30% slower than CUDA *)
  let g = Sw4.Grid.create ~nx:512 ~ny:512 ~h:100.0 in
  let t v = Sw4.Scenario.variant_time_per_step g v in
  let t_naive = t Sw4.Scenario.Naive_cuda in
  let t_shared = t Sw4.Scenario.Shared_cuda in
  let t_raja = t Sw4.Scenario.Raja in
  let t_cpu = t Sw4.Scenario.Cpu_openmp in
  Alcotest.(check bool) "shared beats naive" true (t_shared < t_naive);
  Alcotest.(check bool) "raja ~20-60% behind cuda" true
    (let pen = (t_raja -. t_naive) /. t_naive in
     pen > 0.1 && pen < 0.7);
  Alcotest.(check bool) "gpu beats cpu socket" true (t_naive < t_cpu)

let test_fused_kernel_faster_small_grid () =
  (* kernel merging pays off when launch overhead matters *)
  let g = Sw4.Grid.create ~nx:32 ~ny:32 ~h:100.0 in
  let t_split = Sw4.Scenario.variant_time_per_step g Sw4.Scenario.Naive_cuda in
  let t_fused =
    Sw4.Scenario.variant_time_per_step ~fused:true g Sw4.Scenario.Naive_cuda
  in
  Alcotest.(check bool) "fused faster" true (t_fused < t_split)

let test_sierra_vs_cori_throughput () =
  (* abstract: "up to a 14X throughput increase over Cori" per node *)
  let points = 4_000_000 in
  let sierra = Sw4.Scenario.node_throughput Hwsim.Node.witherspoon ~points in
  let cori = Sw4.Scenario.node_throughput Hwsim.Node.cori_ii ~points in
  let ratio = sierra /. cori in
  Alcotest.(check bool)
    (Fmt.str "ratio %.1f in 8-20x band" ratio)
    true
    (ratio > 8.0 && ratio < 20.0)

(* --- 3D solver --- *)

let test_3d_linear_field_zero_accel () =
  let g = Sw4.Elastic3d.create_grid ~nx:12 ~ny:12 ~nz:12 ~h:1.0 in
  Sw4.Elastic3d.homogeneous g ~rho:1000.0 ~vp:2000.0 ~vs:1000.0;
  let st = Sw4.Elastic3d.create g in
  (* uniform strain: linear displacement field -> zero stress divergence *)
  for k = 0 to 11 do
    for j = 0 to 11 do
      for i = 0 to 11 do
        let p = Sw4.Elastic3d.idx g i j k in
        Sw4.Elastic3d.set_u st ~c:0 ~p (0.001 *. float_of_int i);
        Sw4.Elastic3d.set_u st ~c:1 ~p (0.002 *. float_of_int j);
        Sw4.Elastic3d.set_u st ~c:2 ~p (0.003 *. float_of_int k)
      done
    done
  done;
  Sw4.Elastic3d.acceleration st;
  let m = ref 0.0 in
  Fbuf.iteri (fun _ v -> m := max !m (Float.abs v)) st.Sw4.Elastic3d.a;
  Alcotest.(check bool) "zero acceleration" true (!m < 1e-8)

let test_3d_p_wave_speed () =
  let vp = 3000.0 and vs = 1500.0 in
  let h = 100.0 in
  let g = Sw4.Elastic3d.create_grid ~nx:64 ~ny:24 ~nz:24 ~h in
  Sw4.Elastic3d.homogeneous g ~rho:2000.0 ~vp ~vs;
  let st = Sw4.Elastic3d.create g in
  let f0 = 3.0 in
  let t0 = 1.2 /. f0 in
  let stf = Sw4.Source.ricker ~f0 ~t0 in
  let src = (12, 12, 12) and rcv = (52, 12, 12) in
  let si, sj, sk = src and ri, rj, rk = rcv in
  let dist = float_of_int (ri - si) *. h in
  let expected = t0 +. (dist /. vp) in
  let steps = int_of_float (1.3 *. expected /. st.Sw4.Elastic3d.dt) in
  let peak = ref 0.0 and tpeak = ref 0.0 in
  for s = 1 to steps do
    let time = float_of_int (s - 1) *. st.Sw4.Elastic3d.dt in
    Sw4.Elastic3d.step ~force:(si, sj, sk, 1e9, 0.0, 0.0, stf) st ~time;
    let p = Sw4.Elastic3d.idx g ri rj rk in
    let v = Float.abs (Sw4.Elastic3d.get_u st ~c:0 ~p) in
    if v > !peak then begin
      peak := v;
      tpeak := time
    end
  done;
  Alcotest.(check bool) "wave arrived" true (!peak > 0.0);
  let v_measured = dist /. (!tpeak -. t0) in
  Alcotest.(check bool)
    (Fmt.str "3D vp measured %.0f vs %.0f" v_measured vp)
    true
    (v_measured > 0.8 *. vp && v_measured < 1.25 *. vp)

let test_3d_stability () =
  let g = Sw4.Elastic3d.create_grid ~nx:20 ~ny:20 ~nz:20 ~h:100.0 in
  Sw4.Elastic3d.homogeneous g ~rho:2500.0 ~vp:5000.0 ~vs:2500.0;
  let st = Sw4.Elastic3d.create g in
  let stf = Sw4.Source.ricker ~f0:3.0 ~t0:0.4 in
  for s = 1 to 300 do
    let time = float_of_int (s - 1) *. st.Sw4.Elastic3d.dt in
    Sw4.Elastic3d.step ~force:(10, 10, 10, 1e9, 1e9, 1e9, stf) st ~time
  done;
  Alcotest.(check bool) "energy finite" true
    (Float.is_finite (Sw4.Elastic3d.energy_proxy st));
  Alcotest.(check bool) "fields finite" true
    (let ok = ref true in
     Fbuf.iteri (fun _ v -> if not (Float.is_finite v) then ok := false)
       st.Sw4.Elastic3d.u;
     !ok)

let test_production_run_parity () =
  (* 26B-point Hayward campaign: ~10 h on 256 Sierra nodes; Cori needs a
     high multiple of the nodes for the same deadline *)
  let gp = 26.0e9 and steps = 25_000 in
  let h = Sw4.Scenario.production_run_hours Hwsim.Node.sierra ~nodes:256 ~grid_points:gp ~steps in
  Alcotest.(check bool) (Fmt.str "%.1f h near 10" h) true (h > 5.0 && h < 15.0);
  let cori_nodes = Sw4.Scenario.nodes_for_deadline Hwsim.Node.cori ~grid_points:gp ~steps ~hours:h in
  Alcotest.(check bool)
    (Fmt.str "cori needs %d nodes (>5x)" cori_nodes)
    true
    (cori_nodes > 5 * 256);
  (* more nodes always means fewer or equal hours *)
  let h512 = Sw4.Scenario.production_run_hours Hwsim.Node.sierra ~nodes:512 ~grid_points:gp ~steps in
  Alcotest.(check bool) "scaling monotone" true (h512 < h)

let test_overlap_step_model () =
  let gp = 26e9 in
  let on =
    Sw4.Scenario.production_step_model ~overlap:true Hwsim.Node.sierra
      ~nodes:256 ~grid_points:gp
  in
  let off =
    Sw4.Scenario.production_step_model ~overlap:false Hwsim.Node.sierra
      ~nodes:256 ~grid_points:gp
  in
  (* serial decomposition is the pre-scheduler step time *)
  Alcotest.(check (float 0.0)) "serial = point + halo"
    (on.Sw4.Scenario.point_s +. on.Sw4.Scenario.halo_s)
    on.Sw4.Scenario.serial_s;
  Alcotest.(check (float 0.0)) "modes agree on serial cost"
    off.Sw4.Scenario.serial_s on.Sw4.Scenario.serial_s;
  (* halo under the interior stencil: strictly lower step time *)
  Alcotest.(check bool)
    (Fmt.str "overlapped %.6f < serial %.6f" on.Sw4.Scenario.overlapped_s
       on.Sw4.Scenario.serial_s)
    true
    (on.Sw4.Scenario.overlapped_s < on.Sw4.Scenario.serial_s);
  Alcotest.(check (float 0.0)) "overlap charges overlapped"
    on.Sw4.Scenario.overlapped_s on.Sw4.Scenario.step_s;
  Alcotest.(check (float 0.0)) "serial mode charges serial"
    off.Sw4.Scenario.serial_s off.Sw4.Scenario.step_s;
  (* boundary fraction is a real fraction and the overlapped step never
     beats the interior-only lower bound *)
  Alcotest.(check bool) "boundary_frac in (0, 0.5]" true
    (on.Sw4.Scenario.boundary_frac > 0.0
    && on.Sw4.Scenario.boundary_frac <= 0.5);
  let h_on =
    Sw4.Scenario.production_run_hours ~overlap:true Hwsim.Node.sierra
      ~nodes:256 ~grid_points:gp ~steps:72_000
  in
  let h_off =
    Sw4.Scenario.production_run_hours ~overlap:false Hwsim.Node.sierra
      ~nodes:256 ~grid_points:gp ~steps:72_000
  in
  Alcotest.(check bool)
    (Fmt.str "campaign %.2f h < %.2f h" h_on h_off)
    true (h_on < h_off)

let test_split_default_bit_identical () =
  (* the tuner contract: gpu_frac = 1.0 with a dedicated halo stream is
     the paper default and must reproduce the unsplit model bitwise *)
  let gp = 26e9 in
  let bits = Int64.bits_of_float in
  List.iter
    (fun overlap ->
      let a =
        Sw4.Scenario.production_step_model ~overlap Hwsim.Node.sierra
          ~nodes:256 ~grid_points:gp
      in
      let b =
        Sw4.Scenario.production_step_model ~overlap ~gpu_frac:1.0
          ~comm:Hwsim.Split.Dedicated Hwsim.Node.sierra ~nodes:256
          ~grid_points:gp
      in
      let who = if overlap then "overlap" else "serial" in
      List.iter
        (fun (f, get) ->
          Alcotest.(check int64)
            (Fmt.str "%s: %s bitwise" who f)
            (bits (get a)) (bits (get b)))
        [
          ("point_s", fun m -> m.Sw4.Scenario.point_s);
          ("halo_s", fun m -> m.Sw4.Scenario.halo_s);
          ("serial_s", fun m -> m.Sw4.Scenario.serial_s);
          ("overlapped_s", fun m -> m.Sw4.Scenario.overlapped_s);
          ("step_s", fun m -> m.Sw4.Scenario.step_s);
        ];
      Alcotest.(check int) (who ^ ": same DAG size")
        (Array.length a.Sw4.Scenario.dag)
        (Array.length b.Sw4.Scenario.dag))
    [ true; false ]

let test_split_partial_co_executes () =
  let gp = 26e9 in
  let d =
    Sw4.Scenario.production_step_model ~overlap:true Hwsim.Node.sierra
      ~nodes:256 ~grid_points:gp
  in
  let m =
    Sw4.Scenario.production_step_model ~overlap:true ~gpu_frac:0.5
      Hwsim.Node.sierra ~nodes:256 ~grid_points:gp
  in
  (* host co-execution items join the DAG, and handing half the stencil
     to the slower CPU side makes the serial decomposition worse *)
  Alcotest.(check bool) "CPU items enqueued" true
    (Array.length m.Sw4.Scenario.dag > Array.length d.Sw4.Scenario.dag);
  Alcotest.(check bool)
    (Fmt.str "half-split serial %.4f > all-GPU %.4f" m.Sw4.Scenario.serial_s
       d.Sw4.Scenario.serial_s)
    true
    (m.Sw4.Scenario.serial_s > d.Sw4.Scenario.serial_s);
  (* inline halo placement serializes communication with compute *)
  let inl =
    Sw4.Scenario.production_step_model ~overlap:true
      ~comm:Hwsim.Split.Inline Hwsim.Node.sierra ~nodes:256 ~grid_points:gp
  in
  Alcotest.(check int64) "inline halo leaves serial cost alone"
    (Int64.bits_of_float d.Sw4.Scenario.serial_s)
    (Int64.bits_of_float inl.Sw4.Scenario.serial_s);
  Alcotest.(check bool) "inline halo can't overlap" true
    (inl.Sw4.Scenario.overlapped_s >= d.Sw4.Scenario.overlapped_s)

let prop_acceleration_par_bits_exact =
  (* the pooled stencil must agree with the serial reference to the last
     bit, for random heterogeneous material and random displacement
     fields, under whatever ICOE_DOMAINS the suite runs with *)
  QCheck.Test.make ~name:"pooled acceleration bit-identical to serial"
    ~count:20
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Icoe_util.Rng.create seed in
      let nx = 20 + Icoe_util.Rng.int rng 20 in
      let ny = 20 + Icoe_util.Rng.int rng 20 in
      let g = Sw4.Grid.create ~nx ~ny ~h:100.0 in
      Sw4.Grid.homogeneous g ~rho:2500.0 ~vp:5000.0 ~vs:2500.0;
      for k = 0 to (nx * ny) - 1 do
        g.Sw4.Grid.rho.(k) <- g.Sw4.Grid.rho.(k) *. Icoe_util.Rng.uniform rng 0.8 1.2;
        g.Sw4.Grid.mu.(k) <- g.Sw4.Grid.mu.(k) *. Icoe_util.Rng.uniform rng 0.8 1.2;
        g.Sw4.Grid.lambda.(k) <- g.Sw4.Grid.lambda.(k) *. Icoe_util.Rng.uniform rng 0.8 1.2
      done;
      let n = nx * ny in
      let ux = Fbuf.init n (fun _ -> Icoe_util.Rng.uniform rng (-1e-3) 1e-3) in
      let uy = Fbuf.init n (fun _ -> Icoe_util.Rng.uniform rng (-1e-3) 1e-3) in
      let ax_p = Fbuf.create n and ay_p = Fbuf.create n in
      let ax_s = Fbuf.create n and ay_s = Fbuf.create n in
      Sw4.Elastic.acceleration g (Sw4.Elastic.make_scratch g) ~ux ~uy
        ~ax:ax_p ~ay:ay_p;
      Sw4.Elastic.acceleration_seq g (Sw4.Elastic.make_scratch g) ~ux ~uy
        ~ax:ax_s ~ay:ay_s;
      let bits_eq a b =
        Array.for_all2
          (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
          (Fbuf.to_array a) (Fbuf.to_array b)
      in
      bits_eq ax_p ax_s && bits_eq ay_p ay_s)

let () =
  Alcotest.run "sw4"
    [
      ( "grid",
        [
          Alcotest.test_case "material" `Quick test_grid_material;
          Alcotest.test_case "d1 exact" `Quick test_d1_exact_on_cubics;
        ] );
      ( "elastic",
        [
          Alcotest.test_case "linear field" `Quick test_acceleration_zero_on_linear_field;
          QCheck_alcotest.to_alcotest prop_acceleration_par_bits_exact;
        ] );
      ( "solver",
        [
          Alcotest.test_case "p-wave speed" `Slow test_p_wave_speed;
          Alcotest.test_case "stability" `Quick test_stability_energy_bounded;
          Alcotest.test_case "damping profile" `Quick test_damping_profile_interior_unity;
          Alcotest.test_case "ricker" `Quick test_ricker_properties;
          Alcotest.test_case "temporal convergence" `Slow test_temporal_convergence;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "hayward basin" `Slow test_hayward_basin_amplification;
          Alcotest.test_case "variant ordering" `Quick test_variant_ordering;
          Alcotest.test_case "fused kernels" `Quick test_fused_kernel_faster_small_grid;
          Alcotest.test_case "sierra vs cori" `Quick test_sierra_vs_cori_throughput;
          Alcotest.test_case "production parity" `Quick test_production_run_parity;
          Alcotest.test_case "overlap step model" `Quick test_overlap_step_model;
          Alcotest.test_case "split default bit-identical" `Quick
            test_split_default_bit_identical;
          Alcotest.test_case "split co-executes" `Quick
            test_split_partial_co_executes;
        ] );
      ( "elastic3d",
        [
          Alcotest.test_case "linear field" `Quick test_3d_linear_field_zero_accel;
          Alcotest.test_case "p-wave speed" `Slow test_3d_p_wave_speed;
          Alcotest.test_case "stability" `Slow test_3d_stability;
        ] );
    ]
