(* Tests for the hierarchical topology model: Link.make guards, the
   flat-topology bit-identity contract across hwsim/sparkle/dlearn/svc,
   level/placement monotonicity, and placement-aware dispatch. *)

open Hwsim

let check_float = Alcotest.(check (float 1e-12))

let raises_invalid name f =
  Alcotest.check_raises name
    (Invalid_argument
       (try
          ignore (f ());
          "no exception"
        with
       | Invalid_argument m -> m
       | _ -> "wrong exception"))
    (fun () -> ignore (f ()))

(* --- Link.make construction guard --- *)

let test_link_make_guards () =
  raises_invalid "negative latency" (fun () ->
      Link.make ~name:"bad" ~latency_s:(-1e-6) ~bw_gbs:25.0);
  raises_invalid "zero bandwidth" (fun () ->
      Link.make ~name:"bad" ~latency_s:1e-6 ~bw_gbs:0.0);
  raises_invalid "negative bandwidth" (fun () ->
      Link.make ~name:"bad" ~latency_s:1e-6 ~bw_gbs:(-25.0));
  raises_invalid "nan latency" (fun () ->
      Link.make ~name:"bad" ~latency_s:Float.nan ~bw_gbs:25.0);
  raises_invalid "infinite bandwidth" (fun () ->
      Link.make ~name:"bad" ~latency_s:1e-6 ~bw_gbs:Float.infinity);
  let l = Link.make ~name:"ok" ~latency_s:2e-6 ~bw_gbs:50.0 in
  check_float "latency kept" 2e-6 l.Link.latency_s;
  check_float "bandwidth kept" 50.0 l.Link.bw_gbs

let test_topology_make_guards () =
  raises_invalid "empty levels" (fun () -> Topology.make ~name:"bad" []);
  raises_invalid "radix < 2" (fun () ->
      Topology.make ~name:"bad"
        [ { Topology.name = "leaf"; link = Link.ib_edr; radix = 1;
            contention = 1.0 } ]);
  raises_invalid "contention < 1" (fun () ->
      Topology.make ~name:"bad"
        [ { Topology.name = "leaf"; link = Link.ib_edr; radix = 4;
            contention = 0.5 } ])

(* --- crossing semantics on the stock machines --- *)

let gh_topo = Node.grace_hopper.Node.topology (* leaf 32, pod 16, core *)

let test_crossing_levels () =
  let check name exp got = Alcotest.(check int) name exp got in
  check "1 node crosses nothing" 0
    (Topology.crossing gh_topo ~nodes:1 Topology.Random_spread);
  check "leaf-sized gang stays in the leaf" 0
    (Topology.crossing gh_topo ~nodes:32 Topology.Contiguous);
  check "leaf+1 climbs to the pod" 1
    (Topology.crossing gh_topo ~nodes:33 Topology.Contiguous);
  check "pod-sized gang stays in the pod" 1
    (Topology.crossing gh_topo ~nodes:512 Topology.Contiguous);
  check "pod+1 pays the core" 2
    (Topology.crossing gh_topo ~nodes:513 Topology.Contiguous);
  check "random pays the top at any width" 2
    (Topology.crossing gh_topo ~nodes:2 Topology.Random_spread);
  check "reordered = contiguous + one spill level" 1
    (Topology.crossing gh_topo ~nodes:32 Topology.Rank_reordered);
  check "flat machines always cross their one level" 0
    (Topology.crossing Node.sierra.Node.topology ~nodes:4096
       Topology.Random_spread)

let test_crossing_of_ids () =
  let check name exp ids =
    Alcotest.(check int) name exp (Topology.crossing_of_ids gh_topo ids)
  in
  check "empty gang" 0 [];
  check "singleton gang" 0 [ 5 ];
  check "one leaf" 0 [ 0; 7; 31 ];
  check "two leaves, one pod" 1 [ 0; 32 ];
  check "two pods" 2 [ 0; 512 ]

(* --- the flat bit-identity contract, as qcheck properties --- *)

let arb_link_bytes =
  QCheck.(
    quad (float_range 0.0 1e-3) (float_range 0.1 1000.0)
      (float_range 0.0 1e9) (int_range 1 4096))

let arb_placement =
  QCheck.oneofl
    [ Topology.Contiguous; Topology.Rank_reordered; Topology.Random_spread ]

let prop_flat_prices_like_link =
  QCheck.Test.make ~count:200
    ~name:"flat topology = Link.transfer_time, bit-identically"
    (QCheck.pair arb_link_bytes arb_placement)
    (fun ((latency_s, bw_gbs, bytes, nodes), placement) ->
      let l = Link.make ~name:"l" ~latency_s ~bw_gbs in
      let topo = Topology.flat l in
      let direct = Link.transfer_time l ~bytes in
      Topology.path_time topo ~level:0 ~bytes = direct
      && Topology.gang_transfer_time topo ~nodes ~placement ~bytes = direct
      && Topology.allreduce_time topo ~nodes ~placement ~bytes
         = Topology.allreduce_rounds nodes *. direct
      && Topology.alltoall_gbs topo ~nodes = bw_gbs)

let prop_dlearn_flat_identity =
  QCheck.Test.make ~count:100
    ~name:"dlearn allreduce: flat EDR topology = legacy pricing"
    (QCheck.pair (QCheck.int_range 1 2_000_000) (QCheck.int_range 1 4096))
    (fun (params, learners) ->
      Dlearn.Distributed.allreduce_time
        ~topology:(Topology.flat Link.ib_dual_edr)
        ~params ~learners ()
      = Dlearn.Distributed.allreduce_time ~params ~learners ())

(* the old single-fabric Sparkle formulas, written out verbatim: a
   cluster on a flat topology must reproduce them float-for-float *)
let prop_sparkle_flat_identity =
  QCheck.Test.make ~count:100
    ~name:"sparkle collectives on flat topology = legacy formulas"
    (QCheck.triple QCheck.bool (QCheck.int_range 1 512)
       (QCheck.float_range 1.0 1e9))
    (fun (optimized, nodes, bytes) ->
      let config =
        if optimized then Sparkle.Cluster.optimized_config ~nodes ()
        else Sparkle.Cluster.default_config ~nodes ()
      in
      let t = Sparkle.Cluster.create config in
      let bw = Link.ib_dual_edr.Link.bw_gbs in
      let n = float_of_int nodes in
      let ser = Sparkle.Cluster.ser_rate t in
      let ovh = Sparkle.Cluster.task_overhead t in
      let rounds = Float.ceil (Float.log2 (float_of_int (max 2 nodes))) in
      let shuffle_legacy =
        let wire = bytes /. (n *. bw *. 1e9 *. 0.5) in
        let serde = 2.0 *. bytes /. (n *. ser) in
        let spill =
          if optimized then 0.0 else 2.0 *. bytes /. (n *. 500e6)
        in
        wire +. serde +. spill +. (ovh *. 2.0)
      in
      let aggregate_legacy =
        let link_time b = b /. (bw *. 1e9 *. 0.5) in
        if optimized (* tree_aggregate *) then
          rounds *. (link_time bytes +. (bytes /. ser) +. ovh)
        else (n *. (link_time bytes +. (bytes /. ser))) +. ovh
      in
      let broadcast_legacy =
        rounds *. ((bytes /. (bw *. 1e9 *. 0.5)) +. (bytes /. ser))
      in
      Sparkle.Cluster.shuffle_seconds t ~bytes = shuffle_legacy
      && Sparkle.Cluster.aggregate_seconds t ~bytes_per_node:bytes
         = aggregate_legacy
      && Sparkle.Cluster.broadcast_seconds t ~bytes = broadcast_legacy)

(* --- monotonicity properties --- *)

let arb_fat_tree =
  QCheck.(
    map
      (fun ((leaf_radix, pod_radix), contention) ->
        Topology.fat_tree ~name:"t" ~leaf:Link.ib_ndr ~spine:Link.ib_edr
          ~leaf_radix ~pod_radix ~core_contention:contention ())
      (pair (pair (int_range 2 64) (int_range 2 64)) (float_range 1.0 8.0)))

let prop_path_monotone_in_level =
  QCheck.Test.make ~count:200
    ~name:"path_time strictly monotone in crossed level"
    (QCheck.pair arb_fat_tree (QCheck.float_range 1.0 1e9))
    (fun (topo, bytes) ->
      let d = Topology.depth topo in
      let ok = ref true in
      for level = 0 to d - 2 do
        ok :=
          !ok
          && Topology.path_time topo ~level ~bytes
             < Topology.path_time topo ~level:(level + 1) ~bytes
      done;
      !ok)

let prop_placement_order =
  QCheck.Test.make ~count:200
    ~name:"contiguous <= rank-reordered <= random, per transfer and allreduce"
    (QCheck.triple arb_fat_tree (QCheck.int_range 1 8192)
       (QCheck.float_range 0.0 1e9))
    (fun (topo, nodes, bytes) ->
      let gang p = Topology.gang_transfer_time topo ~nodes ~placement:p ~bytes
      and ar p = Topology.allreduce_time topo ~nodes ~placement:p ~bytes in
      gang Topology.Contiguous <= gang Topology.Rank_reordered
      && gang Topology.Rank_reordered <= gang Topology.Random_spread
      && ar Topology.Contiguous <= ar Topology.Rank_reordered
      && ar Topology.Rank_reordered <= ar Topology.Random_spread)

(* --- placement-aware dispatch in the service simulation --- *)

let synthetic_classes =
  [|
    {
      Icoe_svc.Workload.name = "unit";
      sizes = [| 1; 2 |];
      service = (fun ~nodes:_ -> 10.0);
    };
  |]

let job ~id ~arrival ~nodes =
  { Icoe_svc.Workload.id; arrival; klass = 0; nodes }

let test_svc_flat_topology_identity () =
  (* a flat topology never penalizes, so metrics are bit-identical to a
     run without one *)
  let jobs =
    [ job ~id:0 ~arrival:0.0 ~nodes:1; job ~id:1 ~arrival:0.5 ~nodes:2;
      job ~id:2 ~arrival:1.0 ~nodes:2 ]
  in
  let run topology =
    Icoe_svc.Cluster.simulate ?topology ~nodes:4 ~classes:synthetic_classes
      Icoe_svc.Cluster.Fcfs jobs
  in
  let plain = run None
  and flat = run (Some (Topology.flat Link.ib_dual_edr)) in
  check_float "same makespan" plain.Icoe_svc.Cluster.makespan
    flat.Icoe_svc.Cluster.makespan;
  Alcotest.(check (array (float 0.0)))
    "same turnarounds" plain.Icoe_svc.Cluster.turnarounds
    flat.Icoe_svc.Cluster.turnarounds

let test_svc_fragmented_gang_pays () =
  (* 4-node machine as two 2-node leaves. Job 0 takes node 0; job 1
     then gets nodes 1 and 2 — a fragmented gang spanning both leaves,
     which must run slower than its 10 s contiguous pricing. *)
  let topo =
    Topology.make ~name:"2x2"
      [
        { Topology.name = "leaf"; link = Link.ib_edr; radix = 2;
          contention = 1.0 };
        { Topology.name = "spine"; link = Link.ib_edr; radix = 2;
          contention = 2.0 };
      ]
  in
  let jobs =
    [ job ~id:0 ~arrival:0.0 ~nodes:1; job ~id:1 ~arrival:0.0 ~nodes:2 ]
  in
  let m =
    Icoe_svc.Cluster.simulate ~topology:topo ~nodes:4
      ~classes:synthetic_classes Icoe_svc.Cluster.Fcfs jobs
  in
  let frag =
    List.find
      (fun (r : Icoe_svc.Cluster.job_record) ->
        r.Icoe_svc.Cluster.job.Icoe_svc.Workload.id = 1)
      m.Icoe_svc.Cluster.log
  in
  Alcotest.(check (list int))
    "gang spans both leaves" [ 1; 2 ] frag.Icoe_svc.Cluster.placed;
  Alcotest.(check bool)
    "fragmented gang runs longer than its contiguous pricing" true
    (frag.Icoe_svc.Cluster.finished -. frag.Icoe_svc.Cluster.dispatched
    > 10.0)

let () =
  Alcotest.run "topo"
    [
      ( "guards",
        [
          Alcotest.test_case "link make" `Quick test_link_make_guards;
          Alcotest.test_case "topology make" `Quick test_topology_make_guards;
        ] );
      ( "crossing",
        [
          Alcotest.test_case "levels" `Quick test_crossing_levels;
          Alcotest.test_case "concrete ids" `Quick test_crossing_of_ids;
        ] );
      ( "bit-identity",
        [
          QCheck_alcotest.to_alcotest prop_flat_prices_like_link;
          QCheck_alcotest.to_alcotest prop_dlearn_flat_identity;
          QCheck_alcotest.to_alcotest prop_sparkle_flat_identity;
        ] );
      ( "monotonicity",
        [
          QCheck_alcotest.to_alcotest prop_path_monotone_in_level;
          QCheck_alcotest.to_alcotest prop_placement_order;
        ] );
      ( "svc placement",
        [
          Alcotest.test_case "flat identity" `Quick
            test_svc_flat_topology_identity;
          Alcotest.test_case "fragmented gang pays" `Quick
            test_svc_fragmented_gang_pays;
        ] );
    ]
