(* Failure-injection and edge-case tests across the workload: the library
   must fail loudly (assertions, typed exceptions) or degrade gracefully
   (converged = false) rather than silently returning nonsense. *)

let expect_assert name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Assert_failure")
  | exception Assert_failure _ -> ()
  | exception Invalid_argument _ -> ()

(* --- linalg --- *)

let test_cg_nonconvergence_reported () =
  (* CG on an indefinite operator: must report converged = false (or bail
     via the finite-check), never loop forever or claim success *)
  let op x = Array.mapi (fun i v -> if i mod 2 = 0 then v else -.v) x in
  let b = Array.make 10 1.0 in
  let r = Linalg.Krylov.cg ~tol:1e-12 ~max_iter:50 ~op b (Array.make 10 0.0) in
  Alcotest.(check bool) "not claimed converged" true
    ((not r.Linalg.Krylov.converged) || r.Linalg.Krylov.residual < 1e-12)

let test_gmres_iteration_cap () =
  (* a rotation-like operator that GMRES cannot solve in few iterations:
     the cap must bind *)
  let n = 40 in
  let op x = Array.init n (fun i -> x.((i + 1) mod n)) in
  let b = Array.init n (fun i -> if i = 0 then 1.0 else 0.0) in
  let r = Linalg.Krylov.gmres ~tol:1e-14 ~max_iter:10 ~restart:5 ~op b (Array.make n 0.0) in
  Alcotest.(check bool) "iters within cap" true (r.Linalg.Krylov.iters <= 10)

let test_dense_singular_exception () =
  let a = Linalg.Dense.init 4 4 (fun _ j -> float_of_int j) in
  Alcotest.(check bool) "raises Singular" true
    (match Linalg.Dense.lu_factor a with
    | _ -> false
    | exception Linalg.Dense.Singular _ -> true)

let test_csr_triplet_bounds () =
  expect_assert "row out of range" (fun () ->
      Linalg.Csr.of_triplets ~m:2 ~n:2 [ (5, 0, 1.0) ])

(* --- sundials --- *)

let test_bdf_too_much_work () =
  (* finite-time blow-up ODE with a tiny step cap must raise, not hang *)
  let rhs _t y = [| y.(0) *. y.(0) |] in
  Alcotest.(check bool) "raises Too_much_work" true
    (match
       Sundials.Cvode.bdf ~rtol:1e-10 ~atol:1e-12 ~max_steps:50 ~rhs
         ~lsolve:(Sundials.Cvode.fd_dense_lsolve ~rhs) ~t0:0.0 ~y0:[| 1.0 |]
         2.0
     with
    | _ -> false
    | exception Sundials.Cvode.Too_much_work _ -> true)

(* --- fft / vbl --- *)

let test_fft_rejects_non_pow2 () =
  expect_assert "non-power-of-2" (fun () ->
      Fftlib.Fft.transform (Array.make (2 * 12) 0.0))

let test_beam_rejects_non_pow2 () =
  expect_assert "beam grid" (fun () -> Vbl.Beam.create ~n:100 ~width:0.1 ())

(* --- scheduler --- *)

let test_scheduler_empty_workload () =
  let m = Opt.Scheduler.simulate ~gpus:4 Opt.Scheduler.Sjf [] in
  Alcotest.(check int) "no jobs" 0 m.Opt.Scheduler.completed;
  Alcotest.(check (float 1e-12)) "zero makespan" 0.0 m.Opt.Scheduler.makespan

let test_scheduler_oversized_job () =
  (* a job wider than the pool can never start; the simulation must
     terminate and report it incomplete *)
  let jobs = [ { Opt.Scheduler.id = 0; arrival = 0.0; duration = 1.0; gpus = 9 } ] in
  let m = Opt.Scheduler.simulate ~gpus:4 Opt.Scheduler.Sjf jobs in
  Alcotest.(check int) "not completed" 0 m.Opt.Scheduler.completed

(* --- melodee --- *)

let test_melodee_division_by_zero () =
  (* IEEE semantics, not a crash *)
  let e = Cardioid.Melodee.(Div (Const 1.0, Var 0)) in
  let v = Cardioid.Melodee.eval [| 0.0 |] e in
  Alcotest.(check bool) "inf" true (Float.is_finite v = false)

let test_melodee_log_negative () =
  let e = Cardioid.Melodee.(Log (Const (-1.0))) in
  Alcotest.(check bool) "nan" true (Float.is_nan (Cardioid.Melodee.eval [||] e))

(* --- hypre / pfmg --- *)

let test_pfmg_rejects_bad_size () =
  expect_assert "n must be 2^k - 1" (fun () -> Hypre.Pfmg.create 10)

let test_boxloop_rejects_inverted_box () =
  expect_assert "inverted box" (fun () ->
      Samrai.Box.make ~ilo:5 ~jlo:0 ~ihi:2 ~jhi:3)

(* --- linalg regression: unguarded curvature division in cg --- *)

let test_cg_singular_projection_stays_finite () =
  (* A projection operator that zeroes the last component is singular; with
     b = e_last the very first search direction has p^T A p = 0.  The
     unguarded alpha = rr / pap division poisoned x with inf/nan; the guard
     must bail immediately with a finite x and converged = false. *)
  let n = 6 in
  let op x = Array.mapi (fun i v -> if i = n - 1 then 0.0 else v) x in
  let b = Array.init n (fun i -> if i = n - 1 then 1.0 else 0.0) in
  let r = Linalg.Krylov.cg ~max_iter:20 ~op b (Array.make n 0.0) in
  Alcotest.(check bool) "not converged" false r.Linalg.Krylov.converged;
  Array.iter
    (fun v ->
      Alcotest.(check bool) "x stays finite" true (Float.is_finite v))
    r.Linalg.Krylov.x

(* --- util --- *)

let test_rng_int_zero () =
  expect_assert "n must be positive" (fun () ->
      Icoe_util.Rng.int (Icoe_util.Rng.create 1) 0)

let test_table_row_arity () =
  let t = Icoe_util.Table.create ~title:"t" [ "a"; "b" ] in
  expect_assert "wrong arity" (fun () -> Icoe_util.Table.add_row t [ "only one" ])

let test_stats_singleton () =
  Alcotest.(check (float 1e-12)) "variance of singleton" 0.0
    (Icoe_util.Stats.variance [| 5.0 |]);
  Alcotest.(check (float 1e-12)) "percentile of singleton" 5.0
    (Icoe_util.Stats.percentile [| 5.0 |] 0.7)

let test_rng_int_unbiased () =
  (* n = 3 * 2^60 divides the 62-bit draw domain [0, 2^62) into a "low"
     region [0, 2^60) hit by draws in [0, 2^60) ∪ [3*2^60, 2^62), i.e.
     with the old biased modulo half of all draws landed below 2^60
     instead of a third.  Rejection sampling must bring the fraction back
     to ~1/3. *)
  let rng = Icoe_util.Rng.create 2024 in
  let n = 3 * (1 lsl 60) in
  let lo = 1 lsl 60 in
  let draws = 20_000 in
  let hits = ref 0 in
  for _ = 1 to draws do
    if Icoe_util.Rng.int rng n < lo then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "low fraction %.3f near 1/3, not 1/2" frac)
    true
    (frac < 0.40)

let test_categorical_skips_trailing_zero_weight () =
  (* Weights summing to +inf made every [x < acc] comparison false, so the
     walk fell off the end and returned the final — zero-weight — index. *)
  let rng = Icoe_util.Rng.create 7 in
  let w = [| 1e308; 1e308; 0.0 |] in
  for _ = 1 to 100 do
    let i = Icoe_util.Rng.categorical rng w in
    Alcotest.(check bool) "never the zero-weight index" true (i < 2)
  done;
  (* deterministic boundary: a u just below 1.0 must map to the last
     positive-weight index, not beyond it *)
  let u = 1.0 -. (epsilon_float /. 2.0) in
  Alcotest.(check int) "u -> 1.0 boundary" 1
    (Icoe_util.Rng.categorical_from u [| 1.0; 1.0; 0.0 |])

let test_percentile_sorted_once () =
  let a = [| 9.0; 1.0; 5.0; 3.0; 7.0 |] in
  let s = Icoe_util.Stats.presort a in
  Alcotest.(check bool) "input untouched" true (a.(0) = 9.0);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p=%.2f agrees" p)
        (Icoe_util.Stats.percentile a p)
        (Icoe_util.Stats.percentile_sorted s p))
    [ 0.0; 0.25; 0.5; 0.9; 1.0 ]

(* --- hwsim --- *)

let test_kernel_rejects_negative () =
  expect_assert "negative flops" (fun () ->
      Hwsim.Kernel.make ~name:"bad" ~flops:(-1.0) ~bytes:0.0 ())

let test_clock_rejects_negative_tick () =
  let c = Hwsim.Clock.create () in
  expect_assert "negative dt" (fun () -> Hwsim.Clock.tick c ~phase:"x" (-1.0))

let test_counters_series_equal_timestamps () =
  (* two samples at the same instant used to produce a zero-width interval
     and a nan/inf bandwidth entry; they must be merged instead, keeping
     the later cumulative count so no traffic is lost *)
  let c = Hwsim.Counters.create Hwsim.Device.power9 in
  Hwsim.Counters.sample c ~time:0.0 ~bytes:0.0;
  Hwsim.Counters.sample c ~time:1.0 ~bytes:10e9;
  Hwsim.Counters.sample c ~time:1.0 ~bytes:15e9;
  Hwsim.Counters.sample c ~time:2.0 ~bytes:25e9;
  let s = Hwsim.Counters.series c in
  List.iter
    (fun (t, gbs) ->
      Alcotest.(check bool)
        (Printf.sprintf "finite at t=%.2f" t)
        true
        (Float.is_finite gbs))
    s;
  Alcotest.(check int) "two real intervals" 2 (List.length s);
  (* the merged sample keeps bytes=15e9, so the first interval carries all
     traffic up to t=1 and the mean over the window is unchanged *)
  (match s with
  | (_, gbs1) :: (_, gbs2) :: _ ->
      Alcotest.(check (float 1e-6)) "first interval" 15.0 gbs1;
      Alcotest.(check (float 1e-6)) "second interval" 10.0 gbs2
  | _ -> Alcotest.fail "expected two intervals");
  Alcotest.(check (float 1e-6)) "mean bandwidth" 12.5
    (Hwsim.Counters.achieved_gbs c)

(* --- cretin --- *)

let test_cretin_tiny_ladder_rejected () =
  expect_assert "needs >= 2 levels" (fun () -> Cretin.Atomic.ladder 1)

(* --- ddcmd --- *)

let test_particles_bad_box () =
  expect_assert "box must be positive" (fun () ->
      Ddcmd.Particles.create ~n:8 ~box:(-1.0))

let () =
  Alcotest.run "edge_cases"
    [
      ( "linalg",
        [
          Alcotest.test_case "cg nonconvergence" `Quick test_cg_nonconvergence_reported;
          Alcotest.test_case "gmres cap" `Quick test_gmres_iteration_cap;
          Alcotest.test_case "singular" `Quick test_dense_singular_exception;
          Alcotest.test_case "triplet bounds" `Quick test_csr_triplet_bounds;
          Alcotest.test_case "cg singular projection" `Quick
            test_cg_singular_projection_stays_finite;
        ] );
      ("sundials", [ Alcotest.test_case "too much work" `Quick test_bdf_too_much_work ]);
      ( "fft",
        [
          Alcotest.test_case "non-pow2 fft" `Quick test_fft_rejects_non_pow2;
          Alcotest.test_case "non-pow2 beam" `Quick test_beam_rejects_non_pow2;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "empty workload" `Quick test_scheduler_empty_workload;
          Alcotest.test_case "oversized job" `Quick test_scheduler_oversized_job;
        ] );
      ( "melodee",
        [
          Alcotest.test_case "div by zero" `Quick test_melodee_division_by_zero;
          Alcotest.test_case "log negative" `Quick test_melodee_log_negative;
        ] );
      ( "structured",
        [
          Alcotest.test_case "pfmg size" `Quick test_pfmg_rejects_bad_size;
          Alcotest.test_case "inverted box" `Quick test_boxloop_rejects_inverted_box;
        ] );
      ( "util",
        [
          Alcotest.test_case "rng int 0" `Quick test_rng_int_zero;
          Alcotest.test_case "table arity" `Quick test_table_row_arity;
          Alcotest.test_case "stats singleton" `Quick test_stats_singleton;
          Alcotest.test_case "rng int unbiased" `Quick test_rng_int_unbiased;
          Alcotest.test_case "categorical trailing zero" `Quick
            test_categorical_skips_trailing_zero_weight;
          Alcotest.test_case "percentile sorted once" `Quick
            test_percentile_sorted_once;
        ] );
      ( "hwsim",
        [
          Alcotest.test_case "negative kernel" `Quick test_kernel_rejects_negative;
          Alcotest.test_case "negative tick" `Quick test_clock_rejects_negative_tick;
          Alcotest.test_case "counters equal timestamps" `Quick
            test_counters_series_equal_timestamps;
        ] );
      ("cretin", [ Alcotest.test_case "tiny ladder" `Quick test_cretin_tiny_ladder_rejected ]);
      ("ddcmd", [ Alcotest.test_case "bad box" `Quick test_particles_bad_box ]);
    ]
