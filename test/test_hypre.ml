(* Tests for the hypre analog: smoothers, coarsening, BoomerAMG, BoxLoops. *)

let check_float = Alcotest.(check (float 1e-9))

let laplacian_problem n =
  let a = Linalg.Csr.laplacian_2d n n in
  let rng = Icoe_util.Rng.create 21 in
  let x_true =
    Array.init (n * n) (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0)
  in
  let b = Linalg.Csr.spmv a x_true in
  (a, b, x_true)

let residual a b x =
  Linalg.Vec.nrm2 (Linalg.Vec.sub b (Linalg.Csr.spmv a x))
  /. max (Linalg.Vec.nrm2 b) 1e-300

(* --- smoothers --- *)

let test_smoothers_reduce_residual () =
  let a, b, _ = laplacian_problem 10 in
  List.iter
    (fun kind ->
      let x = Array.make (Array.length b) 0.0 in
      let r0 = residual a b x in
      for _ = 1 to 10 do
        Hypre.Smoother.sweep kind a b x
      done;
      let r1 = residual a b x in
      Alcotest.(check bool)
        (Hypre.Smoother.name kind ^ " reduces residual")
        true (r1 < r0))
    [ Hypre.Smoother.Jacobi 0.8; Hypre.Smoother.L1_jacobi; Hypre.Smoother.Gauss_seidel ]

let test_gs_exact_on_triangular () =
  (* Gauss-Seidel solves a lower-triangular system in one sweep. *)
  let a =
    Linalg.Csr.of_triplets ~m:3 ~n:3
      [ (0, 0, 2.0); (1, 0, 1.0); (1, 1, 3.0); (2, 1, 1.0); (2, 2, 4.0) ]
  in
  let x_true = [| 1.0; 2.0; 3.0 |] in
  let b = Linalg.Csr.spmv a x_true in
  let x = Array.make 3 0.0 in
  Hypre.Smoother.sweep Hypre.Smoother.Gauss_seidel a b x;
  Alcotest.(check bool) "exact in one sweep" true
    (Icoe_util.Stats.max_abs_diff x x_true < 1e-12)

let test_gpu_capability_flags () =
  Alcotest.(check bool) "jacobi gpu ok" true
    (Hypre.Smoother.gpu_capable (Hypre.Smoother.Jacobi 0.8));
  Alcotest.(check bool) "gs not gpu" false
    (Hypre.Smoother.gpu_capable Hypre.Smoother.Gauss_seidel)

(* --- coarsening --- *)

let test_strength_pattern () =
  let a = Linalg.Csr.laplacian_2d 6 6 in
  let s = Hypre.Coarsen.strength ~theta:0.25 a in
  (* every off-diagonal of the Laplacian is strong at theta=0.25 *)
  Alcotest.(check int) "all offdiag strong"
    (Linalg.Csr.nnz a - a.Linalg.Csr.m)
    (Linalg.Csr.nnz s)

let test_pmis_no_adjacent_coarse_under_strength () =
  let a = Linalg.Csr.laplacian_2d 8 8 in
  let s = Hypre.Coarsen.strength a in
  let rng = Icoe_util.Rng.create 5 in
  let cf = Hypre.Coarsen.pmis ~rng s in
  let nc =
    Array.fold_left
      (fun c x -> if x = Hypre.Coarsen.Coarse then c + 1 else c)
      0 cf
  in
  Alcotest.(check bool) "some coarse" true (nc > 0);
  Alcotest.(check bool) "coarsens meaningfully" true (nc < 64);
  (* every fine point must have at least one strong coarse neighbour
     (the PMIS F-assignment rule guarantees it on this mesh) *)
  Array.iteri
    (fun i st ->
      if st = Hypre.Coarsen.Fine then begin
        let has = ref false in
        for k = s.Linalg.Csr.row_ptr.(i) to s.Linalg.Csr.row_ptr.(i + 1) - 1 do
          if cf.(s.Linalg.Csr.col_idx.(k)) = Hypre.Coarsen.Coarse then has := true
        done;
        Alcotest.(check bool) "fine has coarse neighbour" true !has
      end)
    cf

let test_interpolation_partition_of_unity () =
  (* For the constant-stencil Laplacian, each interpolation row of a fine
     point sums to (sum neg offdiag)/a_ii = 1 on interior points. *)
  let a = Linalg.Csr.laplacian_2d 8 8 in
  let s = Hypre.Coarsen.strength a in
  let rng = Icoe_util.Rng.create 5 in
  let cf = Hypre.Coarsen.pmis ~rng s in
  let p, _ = Hypre.Coarsen.direct_interpolation a s cf in
  let ones = Array.make p.Linalg.Csr.n 1.0 in
  let rowsums = Linalg.Csr.spmv p ones in
  Array.iteri
    (fun i st ->
      match st with
      | Hypre.Coarsen.Coarse -> check_float "coarse row injects" 1.0 rowsums.(i)
      | Hypre.Coarsen.Fine ->
          (* interior fine rows sum to 1; boundary rows may sum below 1
             because a_ii includes the Dirichlet wall *)
          Alcotest.(check bool) "fine row sum in (0,1]" true
            (rowsums.(i) > 0.0 && rowsums.(i) <= 1.0 +. 1e-12))
    cf

(* --- BoomerAMG --- *)

let test_amg_solves_2d () =
  let a, b, x_true = laplacian_problem 16 in
  let amg = Hypre.Boomeramg.setup a in
  let vc0 =
    Option.value ~default:0.0 (Icoe_obs.Metrics.value "amg_vcycles_total")
  in
  let x, cycles, res = Hypre.Boomeramg.solve ~tol:1e-10 amg b (Array.make (Array.length b) 0.0) in
  Alcotest.(check bool) "converged" true (res < 1e-10);
  Alcotest.(check bool) "few cycles" true (cycles < 60);
  Alcotest.(check bool) "accurate" true
    (Icoe_util.Stats.max_abs_diff x x_true < 1e-7);
  (* solve calls v_cycle once per cycle, so the registry counter must
     advance by exactly the returned cycle count *)
  Alcotest.(check (float 1e-9)) "registry counted the V-cycles"
    (float_of_int cycles)
    (Option.value ~default:0.0 (Icoe_obs.Metrics.value "amg_vcycles_total")
    -. vc0)

let test_amg_solves_3d () =
  let a = Linalg.Csr.laplacian_3d 8 8 8 in
  let rng = Icoe_util.Rng.create 22 in
  let x_true = Array.init 512 (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let b = Linalg.Csr.spmv a x_true in
  let amg = Hypre.Boomeramg.setup a in
  let x, _, res = Hypre.Boomeramg.solve ~tol:1e-10 amg b (Array.make 512 0.0) in
  Alcotest.(check bool) "3d converged" true (res < 1e-10);
  Alcotest.(check bool) "3d accurate" true
    (Icoe_util.Stats.max_abs_diff x x_true < 1e-7)

let test_amg_hierarchy_shrinks () =
  let a = Linalg.Csr.laplacian_2d 20 20 in
  let amg = Hypre.Boomeramg.setup a in
  Alcotest.(check bool) "multiple levels" true (Hypre.Boomeramg.num_levels amg >= 3);
  let sizes =
    Array.map (fun l -> l.Hypre.Boomeramg.a.Linalg.Csr.m) amg.Hypre.Boomeramg.levels
  in
  for i = 0 to Array.length sizes - 2 do
    Alcotest.(check bool) "levels shrink" true (sizes.(i + 1) < sizes.(i))
  done;
  let oc = Hypre.Boomeramg.operator_complexity amg in
  Alcotest.(check bool) "operator complexity sane" true (oc >= 1.0 && oc < 3.5)

let test_amg_pcg_beats_plain_cg () =
  let a, b, _ = laplacian_problem 24 in
  let x0 = Array.make (Array.length b) 0.0 in
  let amg = Hypre.Boomeramg.setup a in
  let r_amg = Hypre.Boomeramg.pcg_solve ~tol:1e-10 amg b x0 in
  let r_cg = Linalg.Krylov.cg ~tol:1e-10 ~max_iter:5000 ~op:(Linalg.Csr.spmv a) b x0 in
  Alcotest.(check bool) "amg-pcg converged" true r_amg.Linalg.Krylov.converged;
  Alcotest.(check bool) "amg-pcg needs fewer iterations" true
    (r_amg.Linalg.Krylov.iters * 3 < r_cg.Linalg.Krylov.iters)

let test_vcycle_work_counts () =
  let a = Linalg.Csr.laplacian_2d 16 16 in
  let amg = Hypre.Boomeramg.setup a in
  let w = Hypre.Boomeramg.v_cycle_work amg in
  Alcotest.(check bool) "positive flops" true (w.Hwsim.Kernel.flops > 0.0);
  Alcotest.(check bool) "positive bytes" true (w.Hwsim.Kernel.bytes > 0.0);
  Alcotest.(check bool) "many launches (spmv-shaped port)" true
    (w.Hwsim.Kernel.launches > 5)

(* --- BoxLoops --- *)

let mk_ctx policy =
  let clock = Hwsim.Clock.create () in
  (Prog.Exec.make_ctx ~policy ~device:Hwsim.Device.v100 ~clock (), clock)

let test_boxloop_sweeps_box () =
  let ctx, _ = mk_ctx Prog.Policy.Cuda in
  let hits = ref 0 in
  Hypre.Boxloop.boxloop2 ctx ~flops_per:0.0 ~bytes_per:0.0
    { Hypre.Boxloop.ilo = 2; ihi = 4; jlo = 1; jhi = 3 }
    (fun i j ->
      Alcotest.(check bool) "in box" true (i >= 2 && i <= 4 && j >= 1 && j <= 3);
      incr hits);
  Alcotest.(check int) "9 cells" 9 !hits

let test_struct_solver_converges () =
  let ctx, _ = mk_ctx Prog.Policy.Cuda in
  let s = Hypre.Boxloop.Struct_solver.create 20 20 in
  (* manufactured solution: u = 0 on boundary, b = point source *)
  s.Hypre.Boxloop.Struct_solver.b.(Hypre.Boxloop.Struct_solver.idx s 10 10) <- 1.0;
  let sweeps, rel = Hypre.Boxloop.Struct_solver.solve ~tol:1e-8 ctx s in
  Alcotest.(check bool) "converged" true (rel < 1e-8);
  Alcotest.(check bool) "took some sweeps" true (sweeps > 10);
  (* solution positive at the source, decaying away *)
  let u = s.Hypre.Boxloop.Struct_solver.u in
  Alcotest.(check bool) "positive at source" true
    (u.(Hypre.Boxloop.Struct_solver.idx s 10 10) > 0.0);
  Alcotest.(check bool) "decays" true
    (u.(Hypre.Boxloop.Struct_solver.idx s 10 10)
    > u.(Hypre.Boxloop.Struct_solver.idx s 3 3))

let test_struct_solver_backend_retarget () =
  (* The BoxLoop port story: same numerics, different backends, different
     simulated cost. *)
  let run policy =
    let ctx, clock = mk_ctx policy in
    let s = Hypre.Boxloop.Struct_solver.create 16 16 in
    s.Hypre.Boxloop.Struct_solver.b.(Hypre.Boxloop.Struct_solver.idx s 8 8) <- 1.0;
    let _, rel = Hypre.Boxloop.Struct_solver.solve ~tol:1e-8 ctx s in
    (Array.copy s.Hypre.Boxloop.Struct_solver.u, Hwsim.Clock.total clock, rel)
  in
  let u_cuda, t_cuda, r1 = run Prog.Policy.Cuda in
  let u_raja, t_raja, r2 = run Prog.Policy.Raja_cuda in
  Alcotest.(check bool) "both converge" true (r1 < 1e-8 && r2 < 1e-8);
  Alcotest.(check bool) "identical numerics" true
    (Icoe_util.Stats.max_abs_diff u_cuda u_raja < 1e-15);
  Alcotest.(check bool) "different simulated cost" true (t_cuda <> t_raja)

(* --- PFMG (structured geometric multigrid) --- *)

let test_pfmg_converges_fast () =
  let ctx, _ = mk_ctx Prog.Policy.Cuda in
  let t = Hypre.Pfmg.create 63 in
  let f = Hypre.Pfmg.finest t in
  f.Hypre.Pfmg.b.(Hypre.Pfmg.idx f 32 32) <- 1.0;
  let cycles, rel = Hypre.Pfmg.solve ~tol:1e-10 ctx t in
  Alcotest.(check bool) "converged" true (rel < 1e-10);
  (* multigrid signature: O(10) cycles regardless of size *)
  Alcotest.(check bool) (Fmt.str "%d cycles < 15" cycles) true (cycles < 15)

let test_pfmg_grid_independent () =
  (* V-cycle count must not grow with the grid (the whole point of MG,
     and why the paper's structured solvers scale) *)
  let cycles n =
    let ctx, _ = mk_ctx Prog.Policy.Cuda in
    let t = Hypre.Pfmg.create n in
    let f = Hypre.Pfmg.finest t in
    f.Hypre.Pfmg.b.(Hypre.Pfmg.idx f (n / 2) (n / 2)) <- 1.0;
    fst (Hypre.Pfmg.solve ~tol:1e-8 ctx t)
  in
  let c31 = cycles 31 and c127 = cycles 127 in
  Alcotest.(check bool)
    (Fmt.str "cycles %d (31) vs %d (127)" c31 c127)
    true
    (c127 <= c31 + 3)

let test_pfmg_matches_struct_solver () =
  (* same Poisson problem: PFMG and the Jacobi Struct_solver agree *)
  let ctx, _ = mk_ctx Prog.Policy.Cuda in
  let n = 15 in
  let t = Hypre.Pfmg.create n in
  let f = Hypre.Pfmg.finest t in
  f.Hypre.Pfmg.b.(Hypre.Pfmg.idx f 8 8) <- 1.0;
  ignore (Hypre.Pfmg.solve ~tol:1e-12 ctx t);
  let s = Hypre.Boxloop.Struct_solver.create (n + 2) (n + 2) in
  s.Hypre.Boxloop.Struct_solver.b.(Hypre.Boxloop.Struct_solver.idx s 8 8) <- 1.0;
  ignore (Hypre.Boxloop.Struct_solver.solve ~tol:1e-12 ~max_sweeps:20000 ctx s);
  let diff = ref 0.0 in
  for j = 1 to n do
    for i = 1 to n do
      let a = f.Hypre.Pfmg.u.(Hypre.Pfmg.idx f i j) in
      let b = s.Hypre.Boxloop.Struct_solver.u.(Hypre.Boxloop.Struct_solver.idx s i j) in
      diff := max !diff (Float.abs (a -. b))
    done
  done;
  Alcotest.(check bool) (Fmt.str "solutions agree: %.2e" !diff) true (!diff < 1e-8)

let test_pfmg_beats_jacobi_cost () =
  (* the reason hypre has multigrid: far less simulated work than plain
     Jacobi iteration on the same problem *)
  let run_pfmg () =
    let ctx, clock = mk_ctx Prog.Policy.Cuda in
    let t = Hypre.Pfmg.create 63 in
    let f = Hypre.Pfmg.finest t in
    f.Hypre.Pfmg.b.(Hypre.Pfmg.idx f 32 32) <- 1.0;
    ignore (Hypre.Pfmg.solve ~tol:1e-8 ctx t);
    Hwsim.Clock.total clock
  in
  let run_jacobi () =
    let ctx, clock = mk_ctx Prog.Policy.Cuda in
    let s = Hypre.Boxloop.Struct_solver.create 65 65 in
    s.Hypre.Boxloop.Struct_solver.b.(Hypre.Boxloop.Struct_solver.idx s 32 32) <- 1.0;
    ignore (Hypre.Boxloop.Struct_solver.solve ~tol:1e-8 ~max_sweeps:50000 ctx s);
    Hwsim.Clock.total clock
  in
  Alcotest.(check bool) "pfmg much cheaper" true (run_pfmg () *. 5.0 < run_jacobi ())

let prop_amg_random_spd =
  QCheck.Test.make ~name:"AMG-PCG solves random sizes of 2D Laplacian" ~count:5
    QCheck.(int_range 6 20)
    (fun n ->
      let a = Linalg.Csr.laplacian_2d n n in
      let b = Array.make (n * n) 1.0 in
      let amg = Hypre.Boomeramg.setup a in
      let r = Hypre.Boomeramg.pcg_solve ~tol:1e-8 amg b (Array.make (n * n) 0.0) in
      r.Linalg.Krylov.converged)

let () =
  Alcotest.run "hypre"
    [
      ( "smoother",
        [
          Alcotest.test_case "all reduce residual" `Quick test_smoothers_reduce_residual;
          Alcotest.test_case "gs triangular" `Quick test_gs_exact_on_triangular;
          Alcotest.test_case "gpu capability" `Quick test_gpu_capability_flags;
        ] );
      ( "coarsen",
        [
          Alcotest.test_case "strength pattern" `Quick test_strength_pattern;
          Alcotest.test_case "pmis" `Quick test_pmis_no_adjacent_coarse_under_strength;
          Alcotest.test_case "interpolation unity" `Quick test_interpolation_partition_of_unity;
        ] );
      ( "boomeramg",
        [
          Alcotest.test_case "solves 2d" `Quick test_amg_solves_2d;
          Alcotest.test_case "solves 3d" `Quick test_amg_solves_3d;
          Alcotest.test_case "hierarchy shrinks" `Quick test_amg_hierarchy_shrinks;
          Alcotest.test_case "pcg beats cg" `Quick test_amg_pcg_beats_plain_cg;
          Alcotest.test_case "vcycle work" `Quick test_vcycle_work_counts;
          QCheck_alcotest.to_alcotest prop_amg_random_spd;
        ] );
      ( "pfmg",
        [
          Alcotest.test_case "converges fast" `Quick test_pfmg_converges_fast;
          Alcotest.test_case "grid independent" `Quick test_pfmg_grid_independent;
          Alcotest.test_case "matches struct solver" `Quick test_pfmg_matches_struct_solver;
          Alcotest.test_case "beats jacobi" `Quick test_pfmg_beats_jacobi_cost;
        ] );
      ( "boxloop",
        [
          Alcotest.test_case "sweeps box" `Quick test_boxloop_sweeps_box;
          Alcotest.test_case "struct solver" `Quick test_struct_solver_converges;
          Alcotest.test_case "backend retarget" `Quick test_struct_solver_backend_retarget;
        ] );
    ]
