(* Tests for the SUNDIALS analog: N_Vector ops and CVODE-style integrators. *)

let check_float = Alcotest.(check (float 1e-9))

(* --- nvector --- *)

let test_nvector_ops () =
  let open Sundials.Nvector in
  let x = of_array [| 1.0; 2.0; 3.0 |] in
  let y = of_array [| 4.0; 5.0; 6.0 |] in
  let z = create 3 in
  linear_sum 2.0 x 1.0 y z;
  Alcotest.(check (array (float 1e-12))) "linear_sum" [| 6.0; 9.0; 12.0 |] (data z);
  prod x y z;
  Alcotest.(check (array (float 1e-12))) "prod" [| 4.0; 10.0; 18.0 |] (data z);
  scale 3.0 x z;
  Alcotest.(check (array (float 1e-12))) "scale" [| 3.0; 6.0; 9.0 |] (data z);
  inv x z;
  check_float "inv" 0.5 (get z 1);
  add_const x 10.0 z;
  check_float "add_const" 11.0 (get z 0);
  check_float "dot" 32.0 (dot x y);
  check_float "max_norm" 3.0 (max_norm x);
  const 7.0 z;
  check_float "const" 7.0 (get z 2)

let test_nvector_device_backend_charges () =
  let clock = Hwsim.Clock.create () in
  let ctx =
    Prog.Exec.make_ctx ~policy:Prog.Policy.Cuda ~device:Hwsim.Device.v100 ~clock ()
  in
  let be = Sundials.Nvector.device_backend ctx in
  let x = Sundials.Nvector.of_array ~backend:be (Array.make 1000 1.0) in
  let z = Sundials.Nvector.clone x in
  Sundials.Nvector.scale 2.0 x z;
  Alcotest.(check bool) "device op charged" true (Hwsim.Clock.total clock > 0.0);
  (* I/O pulls data back over the link *)
  let before = Hwsim.Clock.total clock in
  let a = Sundials.Nvector.to_host_array z in
  check_float "values correct" 2.0 a.(0);
  Alcotest.(check bool) "transfer charged" true (Hwsim.Clock.total clock > before)

(* --- integrators on analytic problems --- *)

(* y' = -y, y(0)=1, y(t) = e^{-t} *)
let decay_rhs _t y = Array.map (fun v -> -.v) y
let decay_jac _t y =
  Linalg.Dense.init (Array.length y) (Array.length y) (fun i j ->
      if i = j then -1.0 else 0.0)

let test_bdf_decay () =
  let steps0 =
    Option.value ~default:0.0
      (Icoe_obs.Metrics.value ~labels:[ ("method", "bdf") ] "cvode_steps_total")
  in
  let r =
    Sundials.Cvode.bdf ~rtol:1e-8 ~atol:1e-10 ~rhs:decay_rhs
      ~lsolve:(Sundials.Cvode.dense_lsolve ~jac:decay_jac)
      ~t0:0.0 ~y0:[| 1.0 |] 2.0
  in
  Alcotest.(check bool) "accurate" true
    (Float.abs (r.Sundials.Cvode.y.(0) -. exp (-2.0)) < 1e-6);
  Alcotest.(check bool) "took steps" true (r.Sundials.Cvode.stats.Sundials.Cvode.nsteps > 5);
  (* the metrics registry must agree with the integrator's own stats *)
  Alcotest.(check (float 1e-9)) "registry counted the steps"
    (float_of_int r.Sundials.Cvode.stats.Sundials.Cvode.nsteps)
    (Option.value ~default:0.0
       (Icoe_obs.Metrics.value ~labels:[ ("method", "bdf") ] "cvode_steps_total")
    -. steps0)

let test_bdf_tolerance_scaling () =
  let run rtol =
    let r =
      Sundials.Cvode.bdf ~rtol ~atol:(rtol /. 100.0) ~rhs:decay_rhs
        ~lsolve:(Sundials.Cvode.dense_lsolve ~jac:decay_jac)
        ~t0:0.0 ~y0:[| 1.0 |] 1.0
    in
    Float.abs (r.Sundials.Cvode.y.(0) -. exp (-1.0))
  in
  let loose = run 1e-4 and tight = run 1e-9 in
  Alcotest.(check bool) "tighter tol -> smaller error" true (tight < loose)

(* stiff linear problem: y' = -1000 (y - cos t) - sin t; y = cos t is the
   slow manifold. *)
let stiff_rhs t y = [| (-1000.0 *. (y.(0) -. cos t)) -. sin t |]
let stiff_jac _t _y = Linalg.Dense.init 1 1 (fun _ _ -> -1000.0)

let test_bdf_stiff () =
  let r =
    Sundials.Cvode.bdf ~rtol:1e-6 ~atol:1e-9 ~h0:1e-5 ~rhs:stiff_rhs
      ~lsolve:(Sundials.Cvode.dense_lsolve ~jac:stiff_jac)
      ~t0:0.0 ~y0:[| 0.0 |] 3.0
  in
  Alcotest.(check bool) "tracks slow manifold" true
    (Float.abs (r.Sundials.Cvode.y.(0) -. cos 3.0) < 1e-4);
  (* stiff solver must use far fewer steps than the explicit stability
     limit (h < 2/1000 -> 1500 steps) *)
  Alcotest.(check bool) "beats explicit step bound" true
    (r.Sundials.Cvode.stats.Sundials.Cvode.nsteps < 1200)

let test_euler_unstable_on_stiff () =
  (* with h = 3/1000 > 2/1000, forward Euler must blow up *)
  let y = Sundials.Cvode.euler ~rhs:stiff_rhs ~t0:0.0 ~y0:[| 0.0 |] ~steps:1000 3.0 in
  Alcotest.(check bool) "euler diverges" true
    ((not (Float.is_finite y.(0))) || Float.abs y.(0) > 10.0)

let test_rk4_convergence_order () =
  (* RK4 global error ~ h^4: halving h shrinks error ~16x *)
  let exact = exp (-1.0) in
  let err steps =
    let y = Sundials.Cvode.rk4 ~rhs:decay_rhs ~t0:0.0 ~y0:[| 1.0 |] ~steps 1.0 in
    Float.abs (y.(0) -. exact)
  in
  let e1 = err 10 and e2 = err 20 in
  let order = Float.log (e1 /. e2) /. Float.log 2.0 in
  Alcotest.(check bool) "order near 4" true (order > 3.5 && order < 4.5)

let test_adams_oscillator () =
  (* y'' = -y as a system; energy must be approximately conserved *)
  let rhs _t y = [| y.(1); -.y.(0) |] in
  let r =
    Sundials.Cvode.adams ~rtol:1e-8 ~atol:1e-10 ~rhs ~t0:0.0 ~y0:[| 1.0; 0.0 |]
      (2.0 *. Float.pi)
  in
  Alcotest.(check bool) "period return y" true
    (Float.abs (r.Sundials.Cvode.y.(0) -. 1.0) < 1e-4);
  Alcotest.(check bool) "period return y'" true
    (Float.abs r.Sundials.Cvode.y.(1) < 1e-4)

let test_fd_jacobian_matches_analytic () =
  (* the FD lsolve must integrate the stiff problem about as well *)
  let r =
    Sundials.Cvode.bdf ~rtol:1e-6 ~atol:1e-9 ~h0:1e-5 ~rhs:stiff_rhs
      ~lsolve:(Sundials.Cvode.fd_dense_lsolve ~rhs:stiff_rhs)
      ~t0:0.0 ~y0:[| 0.0 |] 1.0
  in
  Alcotest.(check bool) "fd jacobian works" true
    (Float.abs (r.Sundials.Cvode.y.(0) -. cos 1.0) < 1e-4)

(* Robertson problem: the classic stiff kinetics benchmark. *)
let robertson_rhs _t y =
  let a = -0.04 *. y.(0) +. (1e4 *. y.(1) *. y.(2)) in
  let c = 3e7 *. y.(1) *. y.(1) in
  [| a; -.a -. c; c |]

let robertson_jac _t y =
  let j = Linalg.Dense.create 3 3 in
  Linalg.Dense.set j 0 0 (-0.04);
  Linalg.Dense.set j 0 1 (1e4 *. y.(2));
  Linalg.Dense.set j 0 2 (1e4 *. y.(1));
  Linalg.Dense.set j 1 0 0.04;
  Linalg.Dense.set j 1 1 ((-1e4 *. y.(2)) -. (6e7 *. y.(1)));
  Linalg.Dense.set j 1 2 (-1e4 *. y.(1));
  Linalg.Dense.set j 2 1 (6e7 *. y.(1));
  j

let test_bdf_robertson_conservation () =
  let r =
    Sundials.Cvode.bdf ~rtol:1e-6 ~atol:1e-12 ~h0:1e-6 ~rhs:robertson_rhs
      ~lsolve:(Sundials.Cvode.dense_lsolve ~jac:robertson_jac)
      ~t0:0.0 ~y0:[| 1.0; 0.0; 0.0 |] 100.0
  in
  let total = r.Sundials.Cvode.y.(0) +. r.Sundials.Cvode.y.(1) +. r.Sundials.Cvode.y.(2) in
  Alcotest.(check bool) "mass conserved" true (Float.abs (total -. 1.0) < 1e-6);
  Alcotest.(check bool) "species order" true
    (r.Sundials.Cvode.y.(0) > 0.5 && r.Sundials.Cvode.y.(1) < 1e-3)

let test_erk23_accuracy_and_adaptivity () =
  let r =
    Sundials.Cvode.erk23 ~rtol:1e-8 ~atol:1e-10 ~rhs:decay_rhs ~t0:0.0
      ~y0:[| 1.0 |] 2.0
  in
  Alcotest.(check bool) "accurate" true
    (Float.abs (r.Sundials.Cvode.y.(0) -. exp (-2.0)) < 1e-7);
  (* tolerance scaling *)
  let err rtol =
    let r =
      Sundials.Cvode.erk23 ~rtol ~atol:(rtol /. 100.0) ~rhs:decay_rhs ~t0:0.0
        ~y0:[| 1.0 |] 1.0
    in
    Float.abs (r.Sundials.Cvode.y.(0) -. exp (-1.0))
  in
  Alcotest.(check bool) "tighter tol, smaller error" true (err 1e-10 < err 1e-4)

let test_erk23_oscillator_order () =
  (* the 3rd-order method needs far fewer steps than Euler stability would
     suggest, and lands the oscillator period accurately *)
  let rhs _t y = [| y.(1); -.y.(0) |] in
  let r =
    Sundials.Cvode.erk23 ~rtol:1e-9 ~atol:1e-12 ~rhs ~t0:0.0 ~y0:[| 1.0; 0.0 |]
      (2.0 *. Float.pi)
  in
  Alcotest.(check bool) "period return" true
    (Float.abs (r.Sundials.Cvode.y.(0) -. 1.0) < 1e-6);
  (* 3rd-order at rtol 1e-9 needs ~2-3k steps on one period *)
  Alcotest.(check bool) "reasonable step count" true
    (r.Sundials.Cvode.stats.Sundials.Cvode.nsteps < 6000
    && r.Sundials.Cvode.stats.Sundials.Cvode.nsteps > 100)

let prop_bdf_linear_systems =
  QCheck.Test.make ~name:"BDF solves random stable linear systems" ~count:10
    QCheck.(int_range 1 500)
    (fun seed ->
      let rng = Icoe_util.Rng.create seed in
      let n = 2 + Icoe_util.Rng.int rng 3 in
      (* random stable diagonal system with decay rates in [0.5, 5] *)
      let rates = Array.init n (fun _ -> Icoe_util.Rng.uniform rng 0.5 5.0) in
      let rhs _t y = Array.mapi (fun i v -> -.rates.(i) *. v) y in
      let jac _t _y =
        Linalg.Dense.init n n (fun i j -> if i = j then -.rates.(i) else 0.0)
      in
      let y0 = Array.make n 1.0 in
      let r =
        Sundials.Cvode.bdf ~rtol:1e-7 ~atol:1e-10 ~rhs
          ~lsolve:(Sundials.Cvode.dense_lsolve ~jac) ~t0:0.0 ~y0 1.0
      in
      let ok = ref true in
      Array.iteri
        (fun i v ->
          if Float.abs (v -. exp (-.rates.(i))) > 1e-5 then ok := false)
        r.Sundials.Cvode.y;
      !ok)

let () =
  Alcotest.run "sundials"
    [
      ( "nvector",
        [
          Alcotest.test_case "ops" `Quick test_nvector_ops;
          Alcotest.test_case "device backend" `Quick test_nvector_device_backend_charges;
        ] );
      ( "cvode",
        [
          Alcotest.test_case "bdf decay" `Quick test_bdf_decay;
          Alcotest.test_case "bdf tolerance" `Quick test_bdf_tolerance_scaling;
          Alcotest.test_case "bdf stiff" `Quick test_bdf_stiff;
          Alcotest.test_case "euler unstable" `Quick test_euler_unstable_on_stiff;
          Alcotest.test_case "rk4 order" `Quick test_rk4_convergence_order;
          Alcotest.test_case "adams oscillator" `Quick test_adams_oscillator;
          Alcotest.test_case "fd jacobian" `Quick test_fd_jacobian_matches_analytic;
          Alcotest.test_case "robertson" `Quick test_bdf_robertson_conservation;
          Alcotest.test_case "erk23 accuracy" `Quick test_erk23_accuracy_and_adaptivity;
          Alcotest.test_case "erk23 oscillator" `Quick test_erk23_oscillator_order;
          QCheck_alcotest.to_alcotest prop_bdf_linear_systems;
        ] );
    ]
