(* icoe_report: run any of the paper's reproduced experiments by id.

   Usage:
     dune exec bin/icoe_report.exe -- list
     dune exec bin/icoe_report.exe -- run fig8 table4
     dune exec bin/icoe_report.exe -- run all
     dune exec bin/icoe_report.exe -- --trace /tmp/t.json

   Instrumented experiments (fig2, table2, fig8, table4) record span
   traces of the simulated machine; after a run the report appends
   per-device/per-phase rollup tables, and --trace FILE exports the spans
   as Chrome trace-event JSON for chrome://tracing / Perfetto. *)

open Cmdliner

let list_cmd =
  let doc = "List the reproducible tables and figures." in
  let run () =
    Fmt.pr "%-10s %s@." "id" "description";
    Fmt.pr "%s@." (String.make 60 '-');
    List.iter
      (fun (id, desc, _) -> Fmt.pr "%-10s %s@." id desc)
      Icoe.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let trace_arg =
  let doc =
    "Write the collected span traces to $(docv) as Chrome trace-event \
     JSON (open in chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a JSON snapshot of the engine metrics registry (counters, \
     gauges, histograms accumulated during the run) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let write_file file contents =
  match open_out file with
  | oc ->
      output_string oc contents;
      close_out oc
  | exception Sys_error msg ->
      Fmt.epr "cannot write %s: %s@." file msg;
      exit 1

let export_trace file =
  match Icoe.Experiments.collected_traces () with
  | [] ->
      Fmt.epr
        "trace: no spans were collected (none of the requested experiments \
         is instrumented); skipping write of %s@."
        file
  | traces ->
      write_file file (Hwsim.Trace.chrome_json_of_many traces);
      let spans =
        List.fold_left (fun n (_, t) -> n + Hwsim.Trace.span_count t) 0 traces
      in
      Fmt.pr "trace: wrote %d spans from %d experiment run(s) to %s@." spans
        (List.length traces) file

let run_ids ids trace_file metrics_file =
  Icoe.Experiments.clear_traces ();
  (* start each invocation from a clean registry so the snapshot reflects
     exactly the requested experiments *)
  Icoe_obs.Metrics.reset ();
  let ids = if ids = [] then Icoe.Experiments.traced_ids else ids in
  if List.mem "all" ids then print_string (Icoe.Experiments.run_all ())
  else
    List.iter
      (fun id ->
        match Icoe.Experiments.find id with
        | Some (_, _, f) -> print_string (f ())
        | None ->
            Fmt.epr "unknown experiment %S; try 'list'@." id;
            exit 1)
      ids;
  print_string (Icoe.Experiments.trace_rollup_report ());
  if Icoe_obs.Metrics.snapshot () <> [] then
    print_string
      (Icoe_util.Table.render
         (Icoe_obs.Metrics.render_table ~title:"Engine metrics" ()));
  (match trace_file with None -> () | Some file -> export_trace file);
  match metrics_file with
  | None -> ()
  | Some file ->
      write_file file (Icoe_obs.Metrics.to_json ());
      Fmt.pr "metrics: wrote %d samples to %s@."
        (List.length (Icoe_obs.Metrics.snapshot ()))
        file

let run_cmd =
  let doc =
    "Run experiments by id ('all' for everything; defaults to the \
     trace-instrumented set)."
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run_ids $ ids $ trace_arg $ metrics_arg)

let () =
  let doc = "Reproduced experiments from the SC'19 iCoE paper" in
  let info = Cmd.info "icoe_report" ~version:"1.0" ~doc in
  let default =
    Term.(const (fun tf mf -> run_ids [] tf mf) $ trace_arg $ metrics_arg)
  in
  exit (Cmd.eval (Cmd.group ~default info [ list_cmd; run_cmd ]))
