(* icoe_report: run any of the paper's reproduced experiments by id.

   Usage:
     dune exec bin/icoe_report.exe -- list
     dune exec bin/icoe_report.exe -- run fig8 table4
     dune exec bin/icoe_report.exe -- run all
     dune exec bin/icoe_report.exe -- run tune       # work-split auto-tuner
     dune exec bin/icoe_report.exe -- --trace /tmp/t.json
     dune exec bin/icoe_report.exe -- --diff BASE.json CUR.json

   Experiments are Icoe.Harness values resolved through
   Icoe.Harness_registry; each run returns a structured outcome carrying
   the rendered report, the span traces it recorded, and its metrics
   delta. Requested ids are validated and de-duplicated up front: an
   unknown id fails before any experiment runs, and 'all' expands to the
   full registry (combining with other ids, duplicates dropped).

   Instrumented experiments (tag "traced": fig2, table2, fig8, table4)
   record span traces of the simulated machine; after a run the report
   appends per-device/per-phase rollup tables, and --trace FILE exports
   the spans as Chrome trace-event JSON for chrome://tracing /
   Perfetto. *)

open Cmdliner

let list_cmd =
  let doc = "List the reproducible tables and figures." in
  let run () =
    Fmt.pr "%-10s %-34s %s@." "id" "description" "tags";
    Fmt.pr "%s@." (String.make 72 '-');
    List.iter
      (fun (h : Icoe.Harness.t) ->
        Fmt.pr "%-10s %-34s %s@." h.id h.description
          (String.concat "," h.tags))
      Icoe.Harness_registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let trace_arg =
  let doc =
    "Write the collected span traces to $(docv) as Chrome trace-event \
     JSON (open in chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a JSON snapshot of the engine metrics registry (counters, \
     gauges, histograms accumulated during the run) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let faults_arg =
  let doc =
    "Run under a seeded fault plan. Resilience-aware experiments (sw4, \
     cardioid, resilience) derive a deterministic fault schedule from \
     $(docv) and report injected failures, recoveries and \
     time-to-solution inflation; everything is simulated time, so the \
     output is bit-identical across repeats and ICOE_DOMAINS settings."
  in
  Arg.(value & opt (some int) None & info [ "faults" ] ~docv:"SEED" ~doc)

let events_arg =
  let doc =
    "Write the unified structured event log (JSONL flight recorder: one \
     JSON object per line over trace spans, metric deltas, fault \
     injections and service-job lifecycle) to $(docv). Equivalent to \
     setting ICOE_EVENTS=$(docv)."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

let occupancy_arg =
  let doc =
    "Write the cluster-occupancy Chrome trace recorded by the svc \
     experiment (nodes as processes, jobs as spans, queue-depth and \
     free-node counter tracks) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "occupancy" ] ~docv:"FILE" ~doc)

let write_file file contents =
  match open_out file with
  | oc ->
      output_string oc contents;
      close_out oc
  | exception Sys_error msg ->
      Fmt.epr "cannot write %s: %s@." file msg;
      exit 1

let export_trace file traces =
  match traces with
  | [] ->
      Fmt.epr
        "trace: no spans were collected (none of the requested experiments \
         is instrumented); skipping write of %s@."
        file
  | traces ->
      write_file file (Hwsim.Trace.chrome_json_of_many traces);
      let spans =
        List.fold_left (fun n (_, t) -> n + Hwsim.Trace.span_count t) 0 traces
      in
      Fmt.pr "trace: wrote %d spans from %d experiment run(s) to %s@." spans
        (List.length traces) file

(* Expand 'all', reject unknown ids (all of them at once, before any
   experiment runs), and drop duplicates keeping the first occurrence. *)
let resolve_ids ids =
  let requested =
    if ids = [] then
      List.map (fun (h : Icoe.Harness.t) -> h.id) (Icoe.Harness_registry.traced ())
    else ids
  in
  let expanded =
    List.concat_map
      (fun id -> if id = "all" then Icoe.Harness_registry.ids () else [ id ])
      requested
  in
  (match
     List.filter
       (fun id -> Option.is_none (Icoe.Harness_registry.find id))
       expanded
   with
  | [] -> ()
  | unknown ->
      Fmt.epr "unknown experiment%s %s; try 'list'@."
        (if List.length unknown = 1 then "" else "s")
        (String.concat ", "
           (List.map (Fmt.str "%S") (List.sort_uniq String.compare unknown)));
      exit 1);
  let seen = Hashtbl.create 19 in
  List.filter
    (fun id ->
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    expanded

let run_ids ids trace_file metrics_file faults_seed events_file occupancy_file =
  let with_faults body =
    match faults_seed with
    | None -> body ()
    | Some seed -> Icoe_fault.Context.with_spec (Icoe_fault.Plan.spec seed) body
  in
  with_faults @@ fun () ->
  (match events_file with
  | None -> ()
  | Some file -> Icoe_obs.Events.to_file file);
  let ids = resolve_ids ids in
  (* start each invocation from a clean registry so the snapshot reflects
     exactly the requested experiments *)
  Icoe_obs.Metrics.reset ();
  let outcomes =
    List.map
      (fun id ->
        match Icoe.Harness_registry.find id with
        | Some h -> h.Icoe.Harness.run ()
        | None -> assert false (* resolve_ids validated *))
      ids
  in
  List.iter (fun (o : Icoe.Harness.outcome) -> print_string o.report) outcomes;
  let traces =
    List.concat_map (fun (o : Icoe.Harness.outcome) -> o.traces) outcomes
  in
  print_string (Icoe.Harness.rollup_report traces);
  if Icoe_obs.Metrics.snapshot () <> [] then
    print_string
      (Icoe_util.Table.render
         (Icoe_obs.Metrics.render_table ~title:"Engine metrics" ()));
  (match trace_file with None -> () | Some file -> export_trace file traces);
  (match metrics_file with
  | None -> ()
  | Some file ->
      write_file file (Icoe_obs.Metrics.to_json ());
      Fmt.pr "metrics: wrote %d samples to %s@."
        (List.length (Icoe_obs.Metrics.snapshot ()))
        file);
  (match occupancy_file with
  | None -> ()
  | Some file -> (
      let artifacts =
        List.concat_map (fun (o : Icoe.Harness.outcome) -> o.artifacts) outcomes
      in
      match List.assoc_opt "svc-occupancy" artifacts with
      | Some render ->
          write_file file (render ());
          Fmt.pr "occupancy: wrote cluster-occupancy Chrome trace to %s@." file
      | None ->
          Fmt.epr
            "occupancy: no occupancy artifact was recorded (run the 'svc' \
             experiment); skipping write of %s@."
            file));
  match events_file with
  | None -> ()
  | Some file ->
      Icoe_obs.Events.close ();
      Fmt.pr "events: wrote event log to %s@." file

let run_cmd =
  let doc =
    "Run experiments by id ('all' for everything; defaults to the \
     trace-instrumented set)."
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_ids $ ids $ trace_arg $ metrics_arg $ faults_arg $ events_arg
      $ occupancy_arg)

(* --- the differential regression gate ---

   `icoe_report --diff A.json B.json` can't be a cmdliner term on the
   group: Cmd.group parses the first top-level positional as a
   subcommand name. The gate is a distinct mode anyway (no experiments
   run), so it is dispatched by hand before Cmd.eval. *)

let diff_usage () =
  Fmt.epr
    "usage: icoe_report --diff BASELINE.json CURRENT.json [--diff-threshold \
     F] [--wall-threshold F] [--fail-wall] [--all-rows]@.";
  exit 2

let run_diff args =
  let sim_threshold = ref None
  and wall_threshold = ref None
  and fail_wall = ref false
  and all = ref false
  and files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--diff-threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 ->
            sim_threshold := Some f;
            parse rest
        | _ -> diff_usage ())
    | "--wall-threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f >= 0.0 ->
            wall_threshold := Some f;
            parse rest
        | _ -> diff_usage ())
    | "--fail-wall" :: rest ->
        fail_wall := true;
        parse rest
    | "--all-rows" :: rest ->
        all := true;
        parse rest
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
        files := f :: !files;
        parse rest
    | _ -> diff_usage ()
  in
  parse args;
  match List.rev !files with
  | [ base; cur ] -> (
      match
        Icoe_obs.Bench_diff.run_files ?sim_threshold:!sim_threshold
          ?wall_threshold:!wall_threshold ~fail_wall:!fail_wall ~all:!all ~base
          ~cur ()
      with
      | result, report ->
          print_string report;
          exit (Icoe_obs.Bench_diff.exit_code result)
      | exception Failure msg ->
          Fmt.epr "diff: %s@." msg;
          exit 2
      | exception Sys_error msg ->
          Fmt.epr "diff: %s@." msg;
          exit 2)
  | _ -> diff_usage ()

let () =
  (match Array.to_list Sys.argv with
  | _ :: "--diff" :: rest -> run_diff rest
  | _ -> ());
  let doc = "Reproduced experiments from the SC'19 iCoE paper" in
  let info = Cmd.info "icoe_report" ~version:"1.0" ~doc in
  let default =
    Term.(
      const (fun tf mf fs ef oc -> run_ids [] tf mf fs ef oc)
      $ trace_arg $ metrics_arg $ faults_arg $ events_arg $ occupancy_arg)
  in
  exit (Cmd.eval (Cmd.group ~default info [ list_cmd; run_cmd ]))
