(* Tests for the Cretin analog: atomic models, rate matrices, steady-state
   solvers, time advance, minikin batching, and the threading/memory
   performance model. *)

open Cretin

let cond ?(te = 10.0) ?(ne = 1.0e21) ?(radiation = 0.0) () =
  { Ratematrix.te; ne; radiation }

(* --- atomic models --- *)

let test_ladder_structure () =
  let m = Atomic.ladder 5 in
  Alcotest.(check int) "levels" 5 (Atomic.n_levels m);
  Alcotest.(check (float 1e-12)) "ground energy" 0.0 m.Atomic.levels.(0).Atomic.energy;
  Alcotest.(check bool) "energies increase" true
    (m.Atomic.levels.(4).Atomic.energy > m.Atomic.levels.(1).Atomic.energy);
  Alcotest.(check int) "transitions" 8 (List.length m.Atomic.transitions)

let test_boltzmann_normalized () =
  let m = Atomic.ladder 8 in
  let p = Atomic.boltzmann m ~te:1.0 in
  Alcotest.(check (float 1e-12)) "sums to 1" 1.0 (Icoe_util.Stats.sum p);
  Alcotest.(check bool) "ground dominates at low T" true (p.(0) > 0.5)

(* --- rate matrix --- *)

let test_column_sums_zero () =
  (* population conservation: every column of M sums to zero *)
  let m = Atomic.ladder_with_photo 6 in
  let mat = Ratematrix.assemble m (cond ~radiation:1.0 ()) in
  let scale = Linalg.Dense.frobenius mat in
  for j = 0 to 5 do
    let s = ref 0.0 in
    for i = 0 to 5 do
      s := !s +. Linalg.Dense.get mat i j
    done;
    Alcotest.(check bool) (Fmt.str "col %d" j) true
      (Float.abs !s /. scale < 1e-12)
  done

let test_collisional_only_gives_boltzmann () =
  (* detailed balance: with only collisional transitions the steady state
     is the Boltzmann distribution *)
  let n = 6 in
  let levels =
    Array.init n (fun k ->
        { Atomic.energy = 2.0 *. float_of_int k; weight = 1.0 +. float_of_int k })
  in
  let transitions =
    List.concat
      (List.init (n - 1) (fun u ->
           [ Atomic.Collisional { upper = u + 1; lower = u; c0 = 1e-8 } ]))
  in
  let m = { Atomic.name = "lte"; levels; transitions } in
  let te = 7.0 in
  let pops = Ratematrix.solve_direct m (cond ~te ()) in
  let lte = Atomic.boltzmann m ~te in
  Alcotest.(check bool) "matches Boltzmann" true
    (Icoe_util.Stats.max_abs_diff pops lte < 1e-8)

let test_radiative_decay_depletes_excited () =
  (* non-LTE: adding radiative decay pulls excited populations below LTE *)
  let m = Atomic.ladder 6 in
  let te = 10.0 in
  let pops = Ratematrix.solve_direct m (cond ~te ()) in
  let lte = Atomic.boltzmann m ~te in
  Alcotest.(check (float 1e-9)) "normalized" 1.0 (Icoe_util.Stats.sum pops);
  Alcotest.(check bool) "excited below LTE" true (pops.(5) < lte.(5));
  Alcotest.(check bool) "ground above LTE" true (pops.(0) > lte.(0))

let test_populations_nonnegative () =
  let m = Atomic.ladder_with_photo 10 in
  let pops = Ratematrix.solve_direct m (cond ~te:5.0 ~radiation:0.5 ()) in
  Array.iter
    (fun p -> Alcotest.(check bool) "nonneg" true (p >= -1e-12))
    pops

let test_direct_matches_iterative () =
  let m = Atomic.ladder 12 in
  let c = cond ~te:8.0 () in
  let d = Ratematrix.solve_direct m c in
  let it, converged = Ratematrix.solve_iterative m c in
  Alcotest.(check bool) "iterative converged" true converged;
  Alcotest.(check bool) "solutions agree" true
    (Icoe_util.Stats.max_abs_diff d it < 1e-6)

let test_photo_rates_pump_excited () =
  let base = Atomic.ladder 6 in
  let pumped = Atomic.ladder_with_photo ~photo_strength:1.0e5 6 in
  (* dilute plasma: collisions weak enough for radiative pumping to show *)
  let c = cond ~te:3.0 ~ne:1.0e12 ~radiation:5.0 () in
  let p0 = Ratematrix.solve_direct base c in
  let p1 = Ratematrix.solve_direct pumped c in
  Alcotest.(check bool) "radiation pumps excited states" true
    (p1.(1) > p0.(1))

let test_advance_conserves_and_relaxes () =
  let m = Atomic.ladder 5 in
  let c = cond ~te:10.0 () in
  (* start everything in the ground state *)
  let n0 = Array.init 5 (fun k -> if k = 0 then 1.0 else 0.0) in
  let n1 = ref n0 in
  for _ = 1 to 200 do
    n1 := Ratematrix.advance m c ~dt:1e-9 !n1
  done;
  Alcotest.(check (float 1e-9)) "conserved" 1.0 (Icoe_util.Stats.sum !n1);
  let steady = Ratematrix.solve_direct m c in
  Alcotest.(check bool) "relaxes toward steady state" true
    (Icoe_util.Stats.max_abs_diff !n1 steady < 1e-3)

(* --- minikin --- *)

let test_minikin_gradient () =
  let m = Atomic.ladder 8 in
  let mk = Minikin.create ~nzones:16 ~te0:1.0 ~te1:50.0 m in
  Minikin.solve_all mk;
  Array.iter
    (fun z ->
      Alcotest.(check bool) "zone normalized" true
        (Float.abs (Icoe_util.Stats.sum z.Minikin.populations -. 1.0) < 1e-9))
    mk.Minikin.zones;
  (* hotter zones are more excited *)
  let cold = Minikin.mean_excitation mk.Minikin.zones.(0) in
  let hot = Minikin.mean_excitation mk.Minikin.zones.(15) in
  Alcotest.(check bool) "excitation grows with Te" true (hot > cold)

let test_minikin_iterative_path () =
  let m = Atomic.ladder 8 in
  let mk = Minikin.create ~nzones:4 m in
  Minikin.solve_all ~iterative:true mk;
  Array.iter
    (fun z ->
      Alcotest.(check bool) "normalized" true
        (Float.abs (Icoe_util.Stats.sum z.Minikin.populations -. 1.0) < 1e-6))
    mk.Minikin.zones

let test_sec43_speedup_shape () =
  (* second-largest model: ~5.75x node speedup, no idle cores *)
  let mid = Atomic.ladder 2000 in
  let s_mid, idle_mid = Minikin.node_speedup mid in
  Alcotest.(check bool) (Fmt.str "mid speedup %.2f in 4.5-7" s_mid) true
    (s_mid > 4.5 && s_mid < 7.0);
  Alcotest.(check (float 1e-9)) "no idle cores" 0.0 idle_mid;
  (* largest model: memory idles >half the CPU cores, speedup much higher *)
  let big = Atomic.ladder 18000 in
  let s_big, idle_big = Minikin.node_speedup big in
  Alcotest.(check bool) (Fmt.str "idle %.0f%% > 50%%" (idle_big *. 100.0)) true
    (idle_big > 0.5);
  Alcotest.(check bool) "largest model speedup much higher" true
    (s_big > 2.0 *. s_mid);
  (* small models don't pay off on the GPU *)
  let small = Atomic.ladder 40 in
  let s_small, _ = Minikin.node_speedup small in
  Alcotest.(check bool) "small model favours CPU" true (s_small < 1.0)

let test_gpu_memory_one_zone () =
  (* the GPU path only needs one zone resident: even the largest model's
     zone fits in a V100's 16 GB *)
  let big = Atomic.ladder 18000 in
  Alcotest.(check bool) "zone fits on GPU" true
    (Atomic.zone_bytes big < Hwsim.Device.v100.Hwsim.Device.mem_gb *. 1e9)

(* --- opacity --- *)

let test_opacity_line_structure () =
  let m = Atomic.ladder 6 in
  let c = cond ~te:10.0 () in
  let pops = Ratematrix.solve_direct m c in
  let sp = Opacity.spectrum m ~populations:pops ~te:10.0 in
  Alcotest.(check bool) "nonnegative" true
    (Array.for_all (fun (_, k) -> k >= 0.0) sp);
  (* opacity peaks near the strongest line centre (level 1 -> 0) *)
  let e1 = m.Atomic.levels.(1).Atomic.energy in
  let at_line = Opacity.opacity m ~populations:pops ~te:10.0 e1 in
  let off_line = Opacity.opacity m ~populations:pops ~te:10.0 (e1 /. 2.0) in
  Alcotest.(check bool)
    (Fmt.str "line %.3g >> continuum %.3g" at_line off_line)
    true
    (at_line > 10.0 *. off_line)

let test_opacity_saturates_with_excitation () =
  (* pumping population out of the ground state weakens ground-state
     absorption lines (stimulated emission + depletion) *)
  let m = Atomic.ladder 6 in
  let cold = Ratematrix.solve_direct m (cond ~te:2.0 ()) in
  let hot = Ratematrix.solve_direct m (cond ~te:50.0 ()) in
  let e1 = m.Atomic.levels.(1).Atomic.energy in
  let k_cold = Opacity.opacity m ~populations:cold ~te:2.0 e1 in
  (* evaluate the hot plasma's opacity at its own (broader) line centre *)
  let k_hot = Opacity.opacity m ~populations:hot ~te:50.0 e1 in
  Alcotest.(check bool) "hot plasma less opaque in the resonance line" true
    (k_hot < k_cold)

let test_planck_mean_positive () =
  let m = Atomic.ladder 8 in
  let pops = Ratematrix.solve_direct m (cond ~te:10.0 ()) in
  let pm = Opacity.planck_mean m ~populations:pops ~te:10.0 ~tr:8.0 in
  Alcotest.(check bool) "positive and finite" true (pm > 0.0 && Float.is_finite pm)

let prop_steady_state_is_nullspace =
  QCheck.Test.make ~name:"solved populations satisfy M n = 0" ~count:20
    QCheck.(pair (int_range 3 15) (int_range 1 1000))
    (fun (n, seed) ->
      let rng = Icoe_util.Rng.create seed in
      let m = Atomic.ladder n in
      let c = cond ~te:(Icoe_util.Rng.uniform rng 2.0 40.0) () in
      let pops = Ratematrix.solve_direct m c in
      let mat = Ratematrix.assemble m c in
      let r = Linalg.Dense.matvec mat pops in
      (* residual relative to the largest rate in the matrix *)
      let scale = Linalg.Dense.frobenius mat in
      Linalg.Vec.nrm_inf r /. scale < 1e-10)

let () =
  Alcotest.run "cretin"
    [
      ( "atomic",
        [
          Alcotest.test_case "ladder" `Quick test_ladder_structure;
          Alcotest.test_case "boltzmann" `Quick test_boltzmann_normalized;
        ] );
      ( "ratematrix",
        [
          Alcotest.test_case "column sums" `Quick test_column_sums_zero;
          Alcotest.test_case "detailed balance" `Quick test_collisional_only_gives_boltzmann;
          Alcotest.test_case "non-LTE depletion" `Quick test_radiative_decay_depletes_excited;
          Alcotest.test_case "nonnegative" `Quick test_populations_nonnegative;
          Alcotest.test_case "direct = iterative" `Quick test_direct_matches_iterative;
          Alcotest.test_case "photo pumping" `Quick test_photo_rates_pump_excited;
          Alcotest.test_case "time advance" `Quick test_advance_conserves_and_relaxes;
          QCheck_alcotest.to_alcotest prop_steady_state_is_nullspace;
        ] );
      ( "opacity",
        [
          Alcotest.test_case "line structure" `Quick test_opacity_line_structure;
          Alcotest.test_case "saturation" `Quick test_opacity_saturates_with_excitation;
          Alcotest.test_case "planck mean" `Quick test_planck_mean_positive;
        ] );
      ( "minikin",
        [
          Alcotest.test_case "zone gradient" `Quick test_minikin_gradient;
          Alcotest.test_case "iterative path" `Quick test_minikin_iterative_path;
          Alcotest.test_case "sec 4.3 speedups" `Quick test_sec43_speedup_shape;
          Alcotest.test_case "gpu one-zone memory" `Quick test_gpu_memory_one_zone;
        ] );
    ]
