(* Tests for the aggregation layer: the activity registry and the
   experiment harnesses behind the bench executable. *)

let test_registry_complete () =
  (* nine completed activities, as in Table 1 *)
  Alcotest.(check int) "nine activities" 9 (List.length Icoe.Registry.activities);
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (a.Icoe.Registry.name ^ " has modules")
        true
        (a.Icoe.Registry.modules <> []))
    Icoe.Registry.activities;
  let rendered = Icoe_util.Table.render (Icoe.Registry.table1 ()) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true
        (Astring.String.is_infix ~affix:name rendered))
    [ "Cardioid"; "Cretin"; "ParaDyn"; "Seismic (SW4)" ]

let test_experiment_ids_unique () =
  let ids = List.map (fun (i, _, _) -> i) Icoe.Experiments.all in
  Alcotest.(check int) "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "all tables and figures covered" true
    (List.for_all (fun id -> List.mem id ids)
       [ "fig2"; "table2"; "table3"; "fig3"; "fig6"; "fig8"; "table4";
         "table5"; "fig9" ])

let test_find () =
  Alcotest.(check bool) "finds fig8" true (Icoe.Experiments.find "fig8" <> None);
  Alcotest.(check bool) "rejects nonsense" true (Icoe.Experiments.find "nope" = None)

let test_fast_harnesses_produce_output () =
  (* the cheap harnesses run in milliseconds; check they render *)
  List.iter
    (fun id ->
      match Icoe.Experiments.find id with
      | None -> Alcotest.fail ("missing " ^ id)
      | Some (_, _, f) ->
          let out = f () in
          Alcotest.(check bool) (id ^ " nonempty") true (String.length out > 100))
    [ "table1"; "fig3"; "fig6"; "gpudirect"; "table5" ]

let test_run_all_mentions_every_result () =
  let out = Icoe.Experiments.run_all () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in report") true
        (Astring.String.is_infix ~affix:needle out))
    [ "Fig 2"; "Table 2"; "Table 3"; "Fig 3"; "Fig 6"; "Fig 8"; "Table 4";
      "Table 5"; "Fig 9"; "Cretin"; "GROMACS"; "SW4"; "KAVG"; "GPUDirect" ]

let () =
  Alcotest.run "icoe"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "ids unique" `Quick test_experiment_ids_unique;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "fast harnesses" `Quick test_fast_harnesses_produce_output;
          Alcotest.test_case "run all" `Slow test_run_all_mentions_every_result;
        ] );
    ]
