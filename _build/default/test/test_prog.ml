(* Tests for the programming-model layer: policies, forall/reduce, memory
   spaces, pools. *)

let check_float = Alcotest.(check (float 1e-12))

let mk_ctx ?(policy = Prog.Policy.Cuda) () =
  let clock = Hwsim.Clock.create () in
  (Prog.Exec.make_ctx ~policy ~device:Hwsim.Device.v100 ~clock (), clock)

let test_forall_executes_body () =
  let ctx, _ = mk_ctx () in
  let a = Array.make 100 0.0 in
  Prog.Exec.forall ctx ~n:100 ~flops_per:1.0 ~bytes_per:8.0 (fun i ->
      a.(i) <- float_of_int i);
  check_float "body ran" 99.0 a.(99)

let test_forall_charges_time () =
  let ctx, clock = mk_ctx () in
  Prog.Exec.forall ctx ~n:1000 ~flops_per:2.0 ~bytes_per:16.0 (fun _ -> ());
  Alcotest.(check bool) "time charged" true (Hwsim.Clock.total clock > 0.0);
  Alcotest.(check int) "one launch" 1 ctx.Prog.Exec.launches

let test_fusion_cheaper_than_split () =
  (* The ParaDyn lesson: one fused loop beats many small loops because each
     launch pays overhead. *)
  let time_of k_loops n =
    let ctx, clock = mk_ctx () in
    for _ = 1 to k_loops do
      Prog.Exec.forall ctx ~n:(n / k_loops) ~flops_per:1.0 ~bytes_per:8.0
        (fun _ -> ())
    done;
    Hwsim.Clock.total clock
  in
  let fused = time_of 1 10_000 in
  let split = time_of 100 10_000 in
  Alcotest.(check bool) "fused faster" true (fused < split)

let test_policy_ordering_on_gpu () =
  (* CUDA-shared >= CUDA > RAJA on a compute-heavy kernel (Sec 4.9). *)
  let time policy =
    let clock = Hwsim.Clock.create () in
    let ctx = Prog.Exec.make_ctx ~policy ~device:Hwsim.Device.v100 ~clock () in
    Prog.Exec.forall ctx ~n:1_000_000 ~flops_per:100.0 ~bytes_per:8.0 (fun _ -> ());
    Hwsim.Clock.total clock
  in
  let t_cuda_sh = time Prog.Policy.Cuda_shared in
  let t_cuda = time Prog.Policy.Cuda in
  let t_raja = time Prog.Policy.Raja_cuda in
  Alcotest.(check bool) "shared fastest" true (t_cuda_sh < t_cuda);
  Alcotest.(check bool) "cuda beats raja" true (t_cuda < t_raja);
  (* the paper's number: RAJA ~30% slower than CUDA *)
  let penalty = (t_raja -. t_cuda) /. t_cuda in
  Alcotest.(check bool) "raja penalty in 20-60% band" true
    (penalty > 0.2 && penalty < 0.6)

let test_openmp_thread_scaling () =
  let time n_threads =
    let clock = Hwsim.Clock.create () in
    let ctx =
      Prog.Exec.make_ctx ~policy:(Prog.Policy.Openmp n_threads)
        ~device:Hwsim.Device.power9 ~clock ()
    in
    Prog.Exec.forall ctx ~n:1_000_000 ~flops_per:50.0 ~bytes_per:8.0 (fun _ -> ());
    Hwsim.Clock.total clock
  in
  Alcotest.(check bool) "22 threads beat 1" true (time 22 < time 1 /. 4.0)

let test_reduce_result () =
  let ctx, _ = mk_ctx () in
  let s =
    Prog.Exec.reduce ctx ~n:100 ~flops_per:1.0 ~bytes_per:8.0 ~init:0.0
      ~combine:( +. ) (fun i -> float_of_int i)
  in
  check_float "sum 0..99" 4950.0 s

let test_darray_move_charges () =
  let clock = Hwsim.Clock.create () in
  let a = Prog.Space.Darray.create 1000 in
  Prog.Space.Darray.move a ~to_:Prog.Space.Device_mem ~link:Hwsim.Link.nvlink2
    ~clock;
  Alcotest.(check bool) "move charged" true (Hwsim.Clock.total clock > 0.0);
  let before = Hwsim.Clock.total clock in
  (* second move to same space is free *)
  Prog.Space.Darray.move a ~to_:Prog.Space.Device_mem ~link:Hwsim.Link.nvlink2
    ~clock;
  check_float "no double charge" before (Hwsim.Clock.total clock)

let test_darray_ensure () =
  let clock = Hwsim.Clock.create () in
  let a = Prog.Space.Darray.create 10 in
  Prog.Space.Darray.ensure a ~side:Prog.Policy.Host ~link:Hwsim.Link.nvlink2 ~clock;
  check_float "host data on host side free" 0.0 (Hwsim.Clock.total clock);
  Prog.Space.Darray.ensure a ~side:Prog.Policy.Accelerator
    ~link:Hwsim.Link.nvlink2 ~clock;
  Alcotest.(check bool) "migrates for accelerator" true
    (Hwsim.Clock.total clock > 0.0)

let test_pool_amortizes () =
  let clock = Hwsim.Clock.create () in
  let p = Prog.Pool.create "test" in
  (* steady-state alloc/free cycle: only the first allocation is raw *)
  for _ = 1 to 100 do
    Prog.Pool.alloc p ~bytes:1024.0 ~clock;
    Prog.Pool.free p ~bytes:1024.0
  done;
  Alcotest.(check int) "one raw alloc" 1 p.Prog.Pool.raw_allocs;
  Alcotest.(check int) "99 pooled" 99 p.Prog.Pool.pooled_allocs;
  Alcotest.(check bool) "pool much cheaper than raw" true
    (Prog.Pool.pooled_cost p < Prog.Pool.unpooled_cost p /. 10.0)

let prop_forall_runs_all =
  QCheck.Test.make ~name:"forall touches every index" ~count:50
    QCheck.(int_range 1 500)
    (fun n ->
      let ctx, _ = mk_ctx () in
      let hit = Array.make n false in
      Prog.Exec.forall ctx ~n ~flops_per:0.0 ~bytes_per:0.0 (fun i ->
          hit.(i) <- true);
      Array.for_all (fun b -> b) hit)

let () =
  Alcotest.run "prog"
    [
      ( "exec",
        [
          Alcotest.test_case "forall executes" `Quick test_forall_executes_body;
          Alcotest.test_case "forall charges" `Quick test_forall_charges_time;
          Alcotest.test_case "fusion beats split" `Quick test_fusion_cheaper_than_split;
          Alcotest.test_case "policy ordering" `Quick test_policy_ordering_on_gpu;
          Alcotest.test_case "openmp scaling" `Quick test_openmp_thread_scaling;
          Alcotest.test_case "reduce result" `Quick test_reduce_result;
          QCheck_alcotest.to_alcotest prop_forall_runs_all;
        ] );
      ( "space",
        [
          Alcotest.test_case "move charges" `Quick test_darray_move_charges;
          Alcotest.test_case "ensure" `Quick test_darray_ensure;
        ] );
      ("pool", [ Alcotest.test_case "amortizes" `Quick test_pool_amortizes ]);
    ]
