test/test_sundials.mli:
