test/test_sw4.mli:
