test/test_cretin.mli:
