test/test_edge_cases.ml: Alcotest Array Cardioid Cretin Ddcmd Fftlib Float Hwsim Hypre Icoe_util Linalg List Opt Printf Samrai Sundials Vbl
