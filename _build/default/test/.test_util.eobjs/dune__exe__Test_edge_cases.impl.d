test/test_edge_cases.ml: Alcotest Array Cardioid Cretin Ddcmd Fftlib Float Hwsim Hypre Icoe_util Linalg Opt Samrai Sundials Vbl
