test/test_cardioid.mli:
