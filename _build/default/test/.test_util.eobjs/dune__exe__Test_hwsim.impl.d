test/test_hwsim.ml: Alcotest Clock Device Float Hwsim Kernel Link List Node QCheck QCheck_alcotest Roofline
