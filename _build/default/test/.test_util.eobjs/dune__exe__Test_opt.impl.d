test/test_opt.ml: Alcotest Array Float Fmt Hashtbl Hwsim Icoe_util Linalg List Opt Paradyn QCheck QCheck_alcotest Scheduler Topopt
