test/test_samrai.ml: Alcotest Array Float Hwsim List Prog QCheck QCheck_alcotest Samrai
