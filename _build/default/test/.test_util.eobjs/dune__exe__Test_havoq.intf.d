test/test_havoq.mli:
