test/test_vbl.ml: Alcotest Array Fftlib Float Fmt Hwsim Icoe_util QCheck QCheck_alcotest Vbl
