test/test_vbl.mli:
