test/test_sparkle.ml: Alcotest Array Float Fmt Hashtbl Hwsim Icoe_util Lda List QCheck QCheck_alcotest Sparkle
