test/test_util.ml: Alcotest Array Float Icoe_util QCheck QCheck_alcotest Rng Stats String Table
