test/test_dlearn.ml: Alcotest Array Distributed Dlearn Float Fmt Hwsim Icoe_util Lbann List Mlp Modelparallel QCheck QCheck_alcotest Videonet
