test/test_hypre.ml: Alcotest Array Float Fmt Hwsim Hypre Icoe_util Linalg List Prog QCheck QCheck_alcotest
