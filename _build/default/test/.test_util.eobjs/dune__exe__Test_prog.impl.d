test/test_prog.ml: Alcotest Array Hwsim Prog QCheck QCheck_alcotest
