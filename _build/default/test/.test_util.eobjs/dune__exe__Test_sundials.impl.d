test/test_sundials.ml: Alcotest Array Float Hwsim Icoe_util Linalg Prog QCheck QCheck_alcotest Sundials
