test/test_havoq.ml: Alcotest Array Bfs Fmt Graph Havoq Icoe_util List Perf QCheck QCheck_alcotest
