test/test_hypre.mli:
