test/test_sparkle.mli:
