test/test_sw4.ml: Alcotest Array Float Fmt Hwsim Icoe_util Linalg List Sw4
