test/test_ddcmd.ml: Alcotest Array Bonded Cells Ddcmd Engine Float Fmt Icoe_util List Particles Perf Potential QCheck QCheck_alcotest Verlet
