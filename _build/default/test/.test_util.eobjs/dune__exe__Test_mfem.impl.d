test/test_mfem.ml: Alcotest Array Float Fmt Hwsim Hypre Icoe_util Linalg List Mfem Prog Sundials
