test/test_ddcmd.mli:
