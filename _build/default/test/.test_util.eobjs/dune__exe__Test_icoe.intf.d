test/test_icoe.mli:
