test/test_mfem.mli:
