test/test_icoe.ml: Alcotest Astring Icoe Icoe_util List String
