test/test_dlearn.mli:
