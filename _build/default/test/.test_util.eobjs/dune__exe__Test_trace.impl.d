test/test_trace.ml: Alcotest Astring Clock Counters Device Hwsim Icoe_util Kernel Lda List Roofline Sparkle String Trace
