test/test_samrai.mli:
