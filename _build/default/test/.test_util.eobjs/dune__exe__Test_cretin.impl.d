test/test_cretin.ml: Alcotest Array Atomic Cretin Float Fmt Hwsim Icoe_util Linalg List Minikin Opacity QCheck QCheck_alcotest Ratematrix
