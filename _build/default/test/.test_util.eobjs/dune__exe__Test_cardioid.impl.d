test/test_cardioid.ml: Alcotest Array Cardioid Float Fmt Icoe_util Ionic Melodee Monodomain QCheck QCheck_alcotest
