test/test_linalg.ml: Alcotest Array Csr Dense Icoe_util Krylov Linalg QCheck QCheck_alcotest Vec
