(* Tests for the SAMRAI analog: boxes, patches, hierarchy, CleverLeaf. *)

let check_float = Alcotest.(check (float 1e-9))

(* --- box --- *)

let test_box_basics () =
  let b = Samrai.Box.make ~ilo:2 ~jlo:3 ~ihi:5 ~jhi:7 in
  Alcotest.(check int) "ni" 4 (Samrai.Box.ni b);
  Alcotest.(check int) "nj" 5 (Samrai.Box.nj b);
  Alcotest.(check int) "size" 20 (Samrai.Box.size b);
  Alcotest.(check bool) "contains" true (Samrai.Box.contains b ~i:2 ~j:7);
  Alcotest.(check bool) "not contains" false (Samrai.Box.contains b ~i:6 ~j:3)

let test_box_intersect () =
  let a = Samrai.Box.make ~ilo:0 ~jlo:0 ~ihi:4 ~jhi:4 in
  let b = Samrai.Box.make ~ilo:3 ~jlo:2 ~ihi:8 ~jhi:8 in
  (match Samrai.Box.intersect a b with
  | None -> Alcotest.fail "should intersect"
  | Some ov ->
      Alcotest.(check int) "ilo" 3 ov.Samrai.Box.ilo;
      Alcotest.(check int) "ihi" 4 ov.Samrai.Box.ihi;
      Alcotest.(check int) "jlo" 2 ov.Samrai.Box.jlo);
  let c = Samrai.Box.make ~ilo:10 ~jlo:10 ~ihi:12 ~jhi:12 in
  Alcotest.(check bool) "disjoint" true (Samrai.Box.intersect a c = None)

let test_box_refine_coarsen_roundtrip () =
  let b = Samrai.Box.make ~ilo:1 ~jlo:2 ~ihi:3 ~jhi:5 in
  let r = Samrai.Box.refine b 2 in
  Alcotest.(check int) "refined size" (Samrai.Box.size b * 4) (Samrai.Box.size r);
  let c = Samrai.Box.coarsen r 2 in
  Alcotest.(check bool) "roundtrip" true (c = b)

let test_box_split_covers () =
  let b = Samrai.Box.make ~ilo:0 ~jlo:0 ~ihi:15 ~jhi:7 in
  let parts = Samrai.Box.split b 4 in
  let total = List.fold_left (fun a p -> a + Samrai.Box.size p) 0 parts in
  Alcotest.(check int) "partition preserves cells" (Samrai.Box.size b) total;
  Alcotest.(check bool) "multiple parts" true (List.length parts > 1)

(* --- patch --- *)

let test_patch_fields_and_ghosts () =
  let b = Samrai.Box.make ~ilo:0 ~jlo:0 ~ihi:3 ~jhi:3 in
  let p = Samrai.Patch.create ~ghosts:1 b in
  Samrai.Patch.alloc_field p "u";
  Samrai.Patch.set p "u" ~i:0 ~j:0 5.0;
  check_float "get/set" 5.0 (Samrai.Patch.get p "u" ~i:0 ~j:0);
  (* ghost index is addressable *)
  Samrai.Patch.set p "u" ~i:(-1) ~j:0 7.0;
  check_float "ghost" 7.0 (Samrai.Patch.get p "u" ~i:(-1) ~j:0)

let test_patch_ghost_exchange () =
  let b1 = Samrai.Box.make ~ilo:0 ~jlo:0 ~ihi:3 ~jhi:3 in
  let b2 = Samrai.Box.make ~ilo:4 ~jlo:0 ~ihi:7 ~jhi:3 in
  let p1 = Samrai.Patch.create ~ghosts:1 b1 in
  let p2 = Samrai.Patch.create ~ghosts:1 b2 in
  Samrai.Patch.alloc_field p1 "u";
  Samrai.Patch.alloc_field p2 "u";
  Samrai.Patch.iter_interior p2 (fun ~i ~j ->
      Samrai.Patch.set p2 "u" ~i ~j (float_of_int (i + j)));
  Samrai.Patch.fill_ghosts_from p1 "u" ~src:p2;
  (* p1's right ghost column picks up p2's i=4 interior *)
  check_float "ghost filled" 4.0 (Samrai.Patch.get p1 "u" ~i:4 ~j:0);
  check_float "ghost filled j=3" 7.0 (Samrai.Patch.get p1 "u" ~i:4 ~j:3)

let test_patch_pool_amortization () =
  let pool = Prog.Pool.create "t" in
  let clock = Hwsim.Clock.create () in
  let b = Samrai.Box.make ~ilo:0 ~jlo:0 ~ihi:7 ~jhi:7 in
  (* allocate/free the same field shape repeatedly, as regridding does *)
  for _ = 1 to 20 do
    let p = Samrai.Patch.create ~ghosts:1 ~pool ~clock b in
    Samrai.Patch.alloc_field p "u";
    Samrai.Patch.free_field p "u"
  done;
  Alcotest.(check int) "one raw allocation" 1 pool.Prog.Pool.raw_allocs;
  Alcotest.(check int) "rest pooled" 19 pool.Prog.Pool.pooled_allocs

(* --- hierarchy --- *)

let test_hierarchy_levels () =
  let d = Samrai.Box.make ~ilo:0 ~jlo:0 ~ihi:31 ~jhi:31 in
  let h = Samrai.Hierarchy.create ~fields:[ "u" ] d in
  Alcotest.(check int) "one level" 1 (Samrai.Hierarchy.num_levels h);
  Alcotest.(check int) "level cells" 1024 (Samrai.Hierarchy.total_cells h);
  let region = Samrai.Box.make ~ilo:8 ~jlo:8 ~ihi:15 ~jhi:15 in
  Samrai.Hierarchy.add_refined_level h ~region ~ratio:2;
  Alcotest.(check int) "two levels" 2 (Samrai.Hierarchy.num_levels h);
  let fine = Samrai.Hierarchy.level h 1 in
  Alcotest.(check int) "fine covers 4x cells" (64 * 4)
    (Samrai.Hierarchy.level_cells fine)

let test_hierarchy_coarsen_field () =
  let d = Samrai.Box.make ~ilo:0 ~jlo:0 ~ihi:7 ~jhi:7 in
  let h = Samrai.Hierarchy.create ~patches_per_level:1 ~fields:[ "u" ] d in
  let region = Samrai.Box.make ~ilo:0 ~jlo:0 ~ihi:7 ~jhi:7 in
  Samrai.Hierarchy.add_refined_level ~patches:1 h ~region ~ratio:2;
  (* constant fine field coarsens to the same constant *)
  List.iter
    (fun p ->
      Samrai.Patch.iter_interior p (fun ~i ~j -> Samrai.Patch.set p "u" ~i ~j 3.5))
    (Samrai.Hierarchy.level h 1).Samrai.Hierarchy.patches;
  Samrai.Hierarchy.coarsen_field h ~fine_idx:1 ~coarse_idx:0 "u";
  List.iter
    (fun p ->
      Samrai.Patch.iter_interior p (fun ~i ~j ->
          check_float "coarsened constant" 3.5 (Samrai.Patch.get p "u" ~i ~j)))
    (Samrai.Hierarchy.level h 0).Samrai.Hierarchy.patches

(* --- cleverleaf --- *)

let sod_init ~x ~y:_ =
  if x < 0.5 then (1.0, 0.0, 0.0, 1.0) else (0.125, 0.0, 0.0, 0.1)

let test_cleverleaf_conservation () =
  let t = Samrai.Cleverleaf.create ~nx:64 ~ny:8 ~lx:1.0 ~ly:0.125 () in
  Samrai.Cleverleaf.init t sod_init;
  let m0, _, _, e0 = Samrai.Cleverleaf.totals t in
  Samrai.Cleverleaf.run t 0.1;
  let m1, _, _, e1 = Samrai.Cleverleaf.totals t in
  Alcotest.(check bool) "mass conserved" true (Float.abs (m1 -. m0) < 1e-10);
  Alcotest.(check bool) "energy conserved" true (Float.abs (e1 -. e0) < 1e-10);
  Alcotest.(check bool) "steps taken" true (t.Samrai.Cleverleaf.steps > 10)

let test_cleverleaf_sod_structure () =
  let t = Samrai.Cleverleaf.create ~nx:128 ~ny:4 ~lx:1.0 ~ly:0.03125 () in
  Samrai.Cleverleaf.init t sod_init;
  Samrai.Cleverleaf.run t 0.15;
  let rho = Samrai.Cleverleaf.density_slice t in
  (* basic Sod structure at t=0.15: left state intact near x=0, right state
     near x=1, monotone-ish decrease through the fan/contact/shock *)
  Alcotest.(check bool) "left plateau" true (rho.(5) > 0.95);
  Alcotest.(check bool) "right plateau" true (rho.(122) < 0.15);
  Alcotest.(check bool) "intermediate states" true
    (rho.(64) > 0.2 && rho.(64) < 0.95);
  Alcotest.(check bool) "no nans" true (Array.for_all Float.is_finite rho)

let test_cleverleaf_positivity () =
  let t = Samrai.Cleverleaf.create ~nx:32 ~ny:32 ~lx:1.0 ~ly:1.0 () in
  (* strong blast in the centre *)
  Samrai.Cleverleaf.init t (fun ~x ~y ->
      let r2 = ((x -. 0.5) ** 2.0) +. ((y -. 0.5) ** 2.0) in
      if r2 < 0.01 then (1.0, 0.0, 0.0, 10.0) else (1.0, 0.0, 0.0, 0.1));
  Samrai.Cleverleaf.run t 0.05;
  List.iter
    (fun p ->
      Samrai.Patch.iter_interior p (fun ~i ~j ->
          Alcotest.(check bool) "rho > 0" true (Samrai.Patch.get p "rho" ~i ~j > 0.0)))
    (Samrai.Hierarchy.level t.Samrai.Cleverleaf.hier 0).Samrai.Hierarchy.patches

let test_cleverleaf_step_work_pricing () =
  (* Table 5's shape: full node ~7x, single P9 vs single V100 ~15x *)
  let (fc, fg), (sc, sg) =
    Samrai.Cleverleaf.table5_times ~cells:4_000_000 ~steps:100
  in
  let full = fc /. fg and single = sc /. sg in
  Alcotest.(check bool) "full node speedup in 5-10x band" true
    (full > 5.0 && full < 10.0);
  Alcotest.(check bool) "single device speedup in 10-20x band" true
    (single > 10.0 && single < 20.0);
  Alcotest.(check bool) "single ratio exceeds full-node ratio" true
    (single > full)

let test_tag_and_regrid () =
  (* a sharp front in the field: regridding must cover it with a finer
     level, and the refinement region must actually contain the front *)
  let d = Samrai.Box.make ~ilo:0 ~jlo:0 ~ihi:31 ~jhi:31 in
  let h = Samrai.Hierarchy.create ~patches_per_level:2 ~fields:[ "u" ] d in
  List.iter
    (fun p ->
      Samrai.Patch.iter_interior p (fun ~i ~j ->
          ignore j;
          Samrai.Patch.set p "u" ~i ~j (if i < 10 then 0.0 else 1.0)))
    (Samrai.Hierarchy.level h 0).Samrai.Hierarchy.patches;
  let created = Samrai.Hierarchy.regrid_on_gradient h ~name:"u" ~threshold:0.25 in
  Alcotest.(check bool) "level created" true created;
  Alcotest.(check int) "two levels" 2 (Samrai.Hierarchy.num_levels h);
  (* the refined level must straddle the i=16 front (level-1 coords = 2x) *)
  let fine = Samrai.Hierarchy.level h 1 in
  Alcotest.(check int) "refined at 2x" 2 fine.Samrai.Hierarchy.ratio;
  let covers =
    List.exists
      (fun (p : Samrai.Patch.t) ->
        p.Samrai.Patch.box.Samrai.Box.ilo <= 20 && p.Samrai.Patch.box.Samrai.Box.ihi >= 20)
      fine.Samrai.Hierarchy.patches
  in
  Alcotest.(check bool) "covers the front" true covers;
  (* smooth field: no regrid *)
  let h2 = Samrai.Hierarchy.create ~fields:[ "u" ] d in
  Alcotest.(check bool) "no tags, no level" false
    (Samrai.Hierarchy.regrid_on_gradient h2 ~name:"u" ~threshold:0.25)

let prop_box_split_total =
  QCheck.Test.make ~name:"box split preserves cells" ~count:100
    QCheck.(quad (int_range 1 40) (int_range 1 40) (int_range 1 8) (int_range 0 100))
    (fun (ni, nj, n, off) ->
      let b = Samrai.Box.make ~ilo:off ~jlo:(-off) ~ihi:(off + ni - 1) ~jhi:(-off + nj - 1) in
      let parts = Samrai.Box.split b n in
      List.fold_left (fun a p -> a + Samrai.Box.size p) 0 parts = Samrai.Box.size b)

let () =
  Alcotest.run "samrai"
    [
      ( "box",
        [
          Alcotest.test_case "basics" `Quick test_box_basics;
          Alcotest.test_case "intersect" `Quick test_box_intersect;
          Alcotest.test_case "refine/coarsen" `Quick test_box_refine_coarsen_roundtrip;
          Alcotest.test_case "split" `Quick test_box_split_covers;
          QCheck_alcotest.to_alcotest prop_box_split_total;
        ] );
      ( "patch",
        [
          Alcotest.test_case "fields+ghosts" `Quick test_patch_fields_and_ghosts;
          Alcotest.test_case "ghost exchange" `Quick test_patch_ghost_exchange;
          Alcotest.test_case "pool amortization" `Quick test_patch_pool_amortization;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "levels" `Quick test_hierarchy_levels;
          Alcotest.test_case "coarsen field" `Quick test_hierarchy_coarsen_field;
          Alcotest.test_case "tag and regrid" `Quick test_tag_and_regrid;
        ] );
      ( "cleverleaf",
        [
          Alcotest.test_case "conservation" `Quick test_cleverleaf_conservation;
          Alcotest.test_case "sod structure" `Quick test_cleverleaf_sod_structure;
          Alcotest.test_case "positivity" `Quick test_cleverleaf_positivity;
          Alcotest.test_case "step work pricing" `Quick test_cleverleaf_step_work_pricing;
        ] );
    ]
