(* Failure-injection and edge-case tests across the workload: the library
   must fail loudly (assertions, typed exceptions) or degrade gracefully
   (converged = false) rather than silently returning nonsense. *)

let expect_assert name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Assert_failure")
  | exception Assert_failure _ -> ()
  | exception Invalid_argument _ -> ()

(* --- linalg --- *)

let test_cg_nonconvergence_reported () =
  (* CG on an indefinite operator: must report converged = false (or bail
     via the finite-check), never loop forever or claim success *)
  let op x = Array.mapi (fun i v -> if i mod 2 = 0 then v else -.v) x in
  let b = Array.make 10 1.0 in
  let r = Linalg.Krylov.cg ~tol:1e-12 ~max_iter:50 ~op b (Array.make 10 0.0) in
  Alcotest.(check bool) "not claimed converged" true
    ((not r.Linalg.Krylov.converged) || r.Linalg.Krylov.residual < 1e-12)

let test_gmres_iteration_cap () =
  (* a rotation-like operator that GMRES cannot solve in few iterations:
     the cap must bind *)
  let n = 40 in
  let op x = Array.init n (fun i -> x.((i + 1) mod n)) in
  let b = Array.init n (fun i -> if i = 0 then 1.0 else 0.0) in
  let r = Linalg.Krylov.gmres ~tol:1e-14 ~max_iter:10 ~restart:5 ~op b (Array.make n 0.0) in
  Alcotest.(check bool) "iters within cap" true (r.Linalg.Krylov.iters <= 10)

let test_dense_singular_exception () =
  let a = Linalg.Dense.init 4 4 (fun _ j -> float_of_int j) in
  Alcotest.(check bool) "raises Singular" true
    (match Linalg.Dense.lu_factor a with
    | _ -> false
    | exception Linalg.Dense.Singular _ -> true)

let test_csr_triplet_bounds () =
  expect_assert "row out of range" (fun () ->
      Linalg.Csr.of_triplets ~m:2 ~n:2 [ (5, 0, 1.0) ])

(* --- sundials --- *)

let test_bdf_too_much_work () =
  (* finite-time blow-up ODE with a tiny step cap must raise, not hang *)
  let rhs _t y = [| y.(0) *. y.(0) |] in
  Alcotest.(check bool) "raises Too_much_work" true
    (match
       Sundials.Cvode.bdf ~rtol:1e-10 ~atol:1e-12 ~max_steps:50 ~rhs
         ~lsolve:(Sundials.Cvode.fd_dense_lsolve ~rhs) ~t0:0.0 ~y0:[| 1.0 |]
         2.0
     with
    | _ -> false
    | exception Sundials.Cvode.Too_much_work _ -> true)

(* --- fft / vbl --- *)

let test_fft_rejects_non_pow2 () =
  expect_assert "non-power-of-2" (fun () ->
      Fftlib.Fft.transform (Array.make (2 * 12) 0.0))

let test_beam_rejects_non_pow2 () =
  expect_assert "beam grid" (fun () -> Vbl.Beam.create ~n:100 ~width:0.1 ())

(* --- scheduler --- *)

let test_scheduler_empty_workload () =
  let m = Opt.Scheduler.simulate ~gpus:4 Opt.Scheduler.Sjf [] in
  Alcotest.(check int) "no jobs" 0 m.Opt.Scheduler.completed;
  Alcotest.(check (float 1e-12)) "zero makespan" 0.0 m.Opt.Scheduler.makespan

let test_scheduler_oversized_job () =
  (* a job wider than the pool can never start; the simulation must
     terminate and report it incomplete *)
  let jobs = [ { Opt.Scheduler.id = 0; arrival = 0.0; duration = 1.0; gpus = 9 } ] in
  let m = Opt.Scheduler.simulate ~gpus:4 Opt.Scheduler.Sjf jobs in
  Alcotest.(check int) "not completed" 0 m.Opt.Scheduler.completed

(* --- melodee --- *)

let test_melodee_division_by_zero () =
  (* IEEE semantics, not a crash *)
  let e = Cardioid.Melodee.(Div (Const 1.0, Var 0)) in
  let v = Cardioid.Melodee.eval [| 0.0 |] e in
  Alcotest.(check bool) "inf" true (Float.is_finite v = false)

let test_melodee_log_negative () =
  let e = Cardioid.Melodee.(Log (Const (-1.0))) in
  Alcotest.(check bool) "nan" true (Float.is_nan (Cardioid.Melodee.eval [||] e))

(* --- hypre / pfmg --- *)

let test_pfmg_rejects_bad_size () =
  expect_assert "n must be 2^k - 1" (fun () -> Hypre.Pfmg.create 10)

let test_boxloop_rejects_inverted_box () =
  expect_assert "inverted box" (fun () ->
      Samrai.Box.make ~ilo:5 ~jlo:0 ~ihi:2 ~jhi:3)

(* --- util --- *)

let test_rng_int_zero () =
  expect_assert "n must be positive" (fun () ->
      Icoe_util.Rng.int (Icoe_util.Rng.create 1) 0)

let test_table_row_arity () =
  let t = Icoe_util.Table.create ~title:"t" [ "a"; "b" ] in
  expect_assert "wrong arity" (fun () -> Icoe_util.Table.add_row t [ "only one" ])

let test_stats_singleton () =
  Alcotest.(check (float 1e-12)) "variance of singleton" 0.0
    (Icoe_util.Stats.variance [| 5.0 |]);
  Alcotest.(check (float 1e-12)) "percentile of singleton" 5.0
    (Icoe_util.Stats.percentile [| 5.0 |] 0.7)

(* --- hwsim --- *)

let test_kernel_rejects_negative () =
  expect_assert "negative flops" (fun () ->
      Hwsim.Kernel.make ~name:"bad" ~flops:(-1.0) ~bytes:0.0 ())

let test_clock_rejects_negative_tick () =
  let c = Hwsim.Clock.create () in
  expect_assert "negative dt" (fun () -> Hwsim.Clock.tick c ~phase:"x" (-1.0))

(* --- cretin --- *)

let test_cretin_tiny_ladder_rejected () =
  expect_assert "needs >= 2 levels" (fun () -> Cretin.Atomic.ladder 1)

(* --- ddcmd --- *)

let test_particles_bad_box () =
  expect_assert "box must be positive" (fun () ->
      Ddcmd.Particles.create ~n:8 ~box:(-1.0))

let () =
  Alcotest.run "edge_cases"
    [
      ( "linalg",
        [
          Alcotest.test_case "cg nonconvergence" `Quick test_cg_nonconvergence_reported;
          Alcotest.test_case "gmres cap" `Quick test_gmres_iteration_cap;
          Alcotest.test_case "singular" `Quick test_dense_singular_exception;
          Alcotest.test_case "triplet bounds" `Quick test_csr_triplet_bounds;
        ] );
      ("sundials", [ Alcotest.test_case "too much work" `Quick test_bdf_too_much_work ]);
      ( "fft",
        [
          Alcotest.test_case "non-pow2 fft" `Quick test_fft_rejects_non_pow2;
          Alcotest.test_case "non-pow2 beam" `Quick test_beam_rejects_non_pow2;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "empty workload" `Quick test_scheduler_empty_workload;
          Alcotest.test_case "oversized job" `Quick test_scheduler_oversized_job;
        ] );
      ( "melodee",
        [
          Alcotest.test_case "div by zero" `Quick test_melodee_division_by_zero;
          Alcotest.test_case "log negative" `Quick test_melodee_log_negative;
        ] );
      ( "structured",
        [
          Alcotest.test_case "pfmg size" `Quick test_pfmg_rejects_bad_size;
          Alcotest.test_case "inverted box" `Quick test_boxloop_rejects_inverted_box;
        ] );
      ( "util",
        [
          Alcotest.test_case "rng int 0" `Quick test_rng_int_zero;
          Alcotest.test_case "table arity" `Quick test_table_row_arity;
          Alcotest.test_case "stats singleton" `Quick test_stats_singleton;
        ] );
      ( "hwsim",
        [
          Alcotest.test_case "negative kernel" `Quick test_kernel_rejects_negative;
          Alcotest.test_case "negative tick" `Quick test_clock_rejects_negative_tick;
        ] );
      ("cretin", [ Alcotest.test_case "tiny ladder" `Quick test_cretin_tiny_ladder_rejected ]);
      ("ddcmd", [ Alcotest.test_case "bad box" `Quick test_particles_bad_box ]);
    ]
