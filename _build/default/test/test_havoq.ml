(* Tests for the HavoqGT analog: RMAT generation, BFS variants, validation,
   and the Table 2 machine model. *)

open Havoq

let rng () = Icoe_util.Rng.create 91

(* --- graph --- *)

let test_csr_construction () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  Alcotest.(check int) "edges doubled" 8 g.Graph.m;
  Alcotest.(check int) "deg 0" 2 (Graph.degree g 0);
  Alcotest.(check int) "deg 1" 2 (Graph.degree g 1)

let test_rmat_size_and_skew () =
  let g = Graph.rmat ~rng:(rng ()) ~scale:10 () in
  Alcotest.(check int) "vertices" 1024 g.Graph.n;
  Alcotest.(check bool) "edges near 16x n" true
    (g.Graph.m > 24_000 && g.Graph.m <= 32_768);
  (* RMAT is skewed: the max degree dwarfs the mean *)
  let maxdeg = ref 0 in
  for v = 0 to g.Graph.n - 1 do
    maxdeg := max !maxdeg (Graph.degree g v)
  done;
  let mean = float_of_int g.Graph.m /. float_of_int g.Graph.n in
  Alcotest.(check bool)
    (Fmt.str "skew: max %d vs mean %.1f" !maxdeg mean)
    true
    (float_of_int !maxdeg > 6.0 *. mean)

let test_er_not_skewed () =
  let g = Graph.erdos_renyi ~rng:(rng ()) ~n:1024 ~edges:16_384 () in
  let maxdeg = ref 0 in
  for v = 0 to g.Graph.n - 1 do
    maxdeg := max !maxdeg (Graph.degree g v)
  done;
  let mean = float_of_int g.Graph.m /. float_of_int g.Graph.n in
  Alcotest.(check bool) "ER max degree modest" true
    (float_of_int !maxdeg < 3.0 *. mean)

(* --- bfs --- *)

let biggest_component_source g =
  (* pick the highest-degree vertex: on RMAT it is in the big component *)
  let best = ref 0 in
  for v = 0 to g.Graph.n - 1 do
    if Graph.degree g v > Graph.degree g !best then best := v
  done;
  !best

let test_topdown_reaches_component () =
  let g = Graph.rmat ~rng:(rng ()) ~scale:9 () in
  let src = biggest_component_source g in
  let s = Bfs.top_down g ~src in
  Alcotest.(check bool) "reaches most vertices" true
    (float_of_int s.Bfs.reached > 0.5 *. float_of_int g.Graph.n);
  Alcotest.(check bool) "valid tree" true (Bfs.validate g ~src s)

let test_hybrid_matches_topdown_reach () =
  let g = Graph.rmat ~rng:(rng ()) ~scale:9 () in
  let src = biggest_component_source g in
  let td = Bfs.top_down g ~src in
  let hy = Bfs.hybrid g ~src in
  Alcotest.(check int) "same reach" td.Bfs.reached hy.Bfs.reached;
  Alcotest.(check bool) "hybrid valid" true (Bfs.validate g ~src hy);
  Alcotest.(check bool) "same depth" true (hy.Bfs.iterations <= td.Bfs.iterations + 2)

let test_hybrid_traverses_fewer_edges () =
  (* the direction-optimizing payoff on skewed graphs *)
  let g = Graph.rmat ~rng:(rng ()) ~scale:11 () in
  let src = biggest_component_source g in
  let td = Bfs.top_down g ~src in
  let hy = Bfs.hybrid g ~src in
  Alcotest.(check bool) "switched directions" true (hy.Bfs.switches > 0);
  Alcotest.(check bool)
    (Fmt.str "fewer edges: %d vs %d" hy.Bfs.edges_traversed td.Bfs.edges_traversed)
    true
    (hy.Bfs.edges_traversed < td.Bfs.edges_traversed)

let test_disconnected_vertex () =
  (* a vertex with no edges: BFS from it reaches only itself *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2) ] in
  let s = Bfs.top_down g ~src:4 in
  Alcotest.(check int) "reached only source" 1 s.Bfs.reached;
  Alcotest.(check bool) "valid" true (Bfs.validate g ~src:4 s)

let prop_bfs_valid_on_random_graphs =
  QCheck.Test.make ~name:"hybrid BFS valid on random graphs" ~count:20
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let r = Icoe_util.Rng.create seed in
      let g = Graph.erdos_renyi ~rng:r ~n:200 ~edges:600 () in
      let src = Icoe_util.Rng.int r 200 in
      let s = Bfs.hybrid g ~src in
      Bfs.validate g ~src s)

(* --- table 2 model --- *)

let test_table2_scales () =
  List.iter2
    (fun m (name, _, _, scale, _) ->
      Alcotest.(check string) "row order" name m.Perf.name;
      Alcotest.(check int) (name ^ " scale") scale (Perf.max_scale m))
    Perf.machines Perf.paper_rows

let test_table2_gteps_shape () =
  List.iter2
    (fun m (name, _, _, _, gteps) ->
      let modelled = Perf.gteps m in
      let ratio = modelled /. gteps in
      Alcotest.(check bool)
        (Fmt.str "%s gteps %.3f vs paper %.3f" name modelled gteps)
        true
        (ratio > 0.8 && ratio < 1.25))
    Perf.machines Perf.paper_rows

let test_table2_monotone_progress () =
  (* the historical story: each later machine strictly increases GTEPS *)
  let rec go = function
    | a :: (b :: _ as rest) ->
        if b.Perf.year >= a.Perf.year && b.Perf.nodes >= a.Perf.nodes then
          Alcotest.(check bool) "progress" true (Perf.gteps b >= Perf.gteps a);
        go rest
    | _ -> ()
  in
  go Perf.machines

let test_connected_components () =
  (* two explicit components plus an isolated vertex *)
  let g = Graph.of_edges ~n:7 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  let labels = Bfs.connected_components g in
  Alcotest.(check int) "three components" 3 (Bfs.num_components labels);
  Alcotest.(check int) "0-2 together" labels.(0) labels.(2);
  Alcotest.(check int) "3-5 together" labels.(3) labels.(5);
  Alcotest.(check bool) "separate" true (labels.(0) <> labels.(3));
  Alcotest.(check bool) "isolate alone" true
    (labels.(6) <> labels.(0) && labels.(6) <> labels.(3))

let prop_components_match_bfs =
  QCheck.Test.make ~name:"component of src = BFS reach" ~count:15
    QCheck.(int_range 1 5000)
    (fun seed ->
      let r = Icoe_util.Rng.create seed in
      let g = Graph.erdos_renyi ~rng:r ~n:120 ~edges:150 () in
      let src = Icoe_util.Rng.int r 120 in
      let labels = Bfs.connected_components g in
      let s = Bfs.top_down g ~src in
      let same_comp = ref 0 in
      Array.iteri (fun v l -> if l = labels.(src) then ignore v; ()) labels;
      Array.iteri
        (fun v l -> if l = labels.(src) then incr same_comp else ignore v)
        labels;
      !same_comp = s.Bfs.reached)

let test_measured_gteps_positive () =
  let g = Graph.rmat ~rng:(rng ()) ~scale:12 () in
  let gteps = Perf.measured_gteps g ~src:0 in
  Alcotest.(check bool) (Fmt.str "measured %.4f GTEPS > 0" gteps) true (gteps > 0.0)

let () =
  Alcotest.run "havoq"
    [
      ( "graph",
        [
          Alcotest.test_case "csr" `Quick test_csr_construction;
          Alcotest.test_case "rmat skew" `Quick test_rmat_size_and_skew;
          Alcotest.test_case "er uniform" `Quick test_er_not_skewed;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "topdown" `Quick test_topdown_reaches_component;
          Alcotest.test_case "hybrid reach" `Quick test_hybrid_matches_topdown_reach;
          Alcotest.test_case "hybrid fewer edges" `Quick test_hybrid_traverses_fewer_edges;
          Alcotest.test_case "disconnected" `Quick test_disconnected_vertex;
          QCheck_alcotest.to_alcotest prop_bfs_valid_on_random_graphs;
        ] );
      ( "table2",
        [
          Alcotest.test_case "scales" `Quick test_table2_scales;
          Alcotest.test_case "gteps" `Quick test_table2_gteps_shape;
          Alcotest.test_case "monotone" `Quick test_table2_monotone_progress;
          Alcotest.test_case "measured gteps" `Quick test_measured_gteps_positive;
          Alcotest.test_case "connected components" `Quick test_connected_components;
          QCheck_alcotest.to_alcotest prop_components_match_bfs;
        ] );
    ]
