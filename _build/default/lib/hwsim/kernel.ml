(** Work descriptors: what a computational kernel did, independent of where
    it runs. Real OCaml kernels accumulate these counts while computing, and
    the roofline prices them on a simulated device. *)

type t = {
  name : string;
  flops : float;  (** floating-point operations *)
  bytes : float;  (** DRAM traffic: reads + writes *)
  launches : int;  (** number of device kernel launches / parallel regions *)
}

let make ?(launches = 1) ~name ~flops ~bytes () =
  assert (flops >= 0.0 && bytes >= 0.0 && launches >= 0);
  { name; flops; bytes; launches }

let zero name = { name; flops = 0.0; bytes = 0.0; launches = 0 }

let add a b =
  {
    name = a.name;
    flops = a.flops +. b.flops;
    bytes = a.bytes +. b.bytes;
    launches = a.launches + b.launches;
  }

let scale k a =
  { a with flops = k *. a.flops; bytes = k *. a.bytes }

(** Arithmetic intensity in flops/byte; infinite for pure-compute kernels. *)
let intensity k = if k.bytes = 0.0 then infinity else k.flops /. k.bytes

let pp ppf k =
  Fmt.pf ppf "%s{%.3g F, %.3g B, AI=%.2f, %d launches}" k.name k.flops k.bytes
    (intensity k) k.launches
