lib/hwsim/clock.mli: Format
