lib/hwsim/device.mli: Format
