lib/hwsim/link.ml: Float Fmt
