lib/hwsim/roofline.ml: Device Kernel
