lib/hwsim/counters.mli: Device
