lib/hwsim/counters.ml: Device List
