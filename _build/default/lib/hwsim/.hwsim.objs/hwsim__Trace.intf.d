lib/hwsim/trace.mli: Clock Counters Device Format Icoe_util Kernel Roofline
