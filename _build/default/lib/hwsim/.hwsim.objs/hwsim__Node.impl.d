lib/hwsim/node.ml: Device Fmt Link
