lib/hwsim/kernel.ml: Fmt
