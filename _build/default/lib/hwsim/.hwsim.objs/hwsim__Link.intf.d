lib/hwsim/link.mli: Format
