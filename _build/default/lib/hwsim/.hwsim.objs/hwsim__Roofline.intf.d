lib/hwsim/roofline.mli: Device Kernel
