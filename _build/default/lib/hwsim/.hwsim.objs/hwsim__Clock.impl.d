lib/hwsim/clock.ml: Fmt Hashtbl List
