lib/hwsim/node.mli: Device Format Link
