lib/hwsim/kernel.mli: Format
