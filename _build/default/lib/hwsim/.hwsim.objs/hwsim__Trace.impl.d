lib/hwsim/trace.ml: Buffer Char Clock Counters Device Float Fmt Hashtbl Icoe_util Kernel List Option Roofline String Table
