lib/hwsim/device.ml: Fmt
