(** Node and cluster composition: the machines of the paper.

    A node aggregates CPU sockets and GPUs with a host link; a machine is
    [nodes] identical nodes on a fabric. *)

type t = {
  name : string;
  cpu : Device.t;
  cpu_sockets : int;
  gpu : Device.t option;
  gpus : int;
  host_link : Link.t;
  nvme_gb : float;  (** node-local burst-tier capacity; 0 when absent *)
}

type machine = { node : t; nodes : int; fabric : Link.t }

val cpu_peak_gflops : t -> float
val gpu_peak_gflops : t -> float
val node_peak_gflops : t -> float

val witherspoon : t
(** Sierra node: 2x P9 + 4x V100 on NVLink2, 1.6 TB NVMe. *)

val minsky : t
(** Early-access node: 2x P8 + 4x P100 on NVLink1. *)

val cori_ii : t
(** KNL node at NERSC (SW4's comparison machine). *)

val viz_node : t
val dev_node : t
val catalyst_node : t

val sierra : machine
val ea_system : machine
val cori : machine
val catalyst : machine

val pp : Format.formatter -> t -> unit
