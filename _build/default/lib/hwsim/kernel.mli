(** Work descriptors: what a computational kernel did, independent of
    where it runs. Real OCaml kernels accumulate these counts while
    computing; the roofline prices them on a simulated device. *)

type t = {
  name : string;
  flops : float;  (** floating-point operations *)
  bytes : float;  (** DRAM traffic: reads + writes *)
  launches : int;  (** device kernel launches / parallel regions *)
}

val make : ?launches:int -> name:string -> flops:float -> bytes:float -> unit -> t
(** All quantities must be nonnegative ([launches] defaults to 1). *)

val zero : string -> t

val add : t -> t -> t
(** Componentwise sum (keeps the first name). *)

val scale : float -> t -> t
(** Scales flops and bytes; launches are unchanged. *)

val intensity : t -> float
(** Arithmetic intensity, flops/byte; infinite when [bytes = 0]. *)

val pp : Format.formatter -> t -> unit
