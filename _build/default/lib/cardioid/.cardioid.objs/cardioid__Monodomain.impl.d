lib/cardioid/monodomain.ml: Array Hwsim Ionic Prog
