lib/cardioid/melodee.ml: Array Float Linalg
