lib/cardioid/ionic.ml: Array List Melodee
