lib/cardioid/ionic.mli: Melodee
