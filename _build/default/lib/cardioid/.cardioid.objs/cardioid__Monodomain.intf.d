lib/cardioid/monodomain.mli: Ionic
