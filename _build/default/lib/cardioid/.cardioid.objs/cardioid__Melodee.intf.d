lib/cardioid/melodee.mli:
