(** Melodee: Cardioid's reaction-kernel DSL.

    The paper's pipeline (Sec 4.1): take the ionic-model equations as an
    expression tree, (1) replace expensive math functions with run-time
    rational polynomials, (2) optionally instantiate run-time coefficients
    as compile-time constants, and (3) "JIT" the result — here, compile
    the tree to an OCaml closure. The op-count report drives the device
    pricing of each variant. *)

type expr =
  | Const of float
  | Var of int  (** index into the state/input vector *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Neg of expr
  | Exp of expr
  | Log of expr
  | Ratpoly of float array * float array * expr
      (** p(x)/q(x) with coefficient arrays, lowest degree first *)

val eval : float array -> expr -> float

val op_count : expr -> int * int
(** (cheap flops, expensive math calls). Rational polynomials count as
    cheap flops only — that is the whole point. *)

val constant_fold : expr -> expr
(** Evaluate constant subtrees at "compile time" (the paper's run-time
    coefficients -> compile-time constants lesson as a pass). *)

val rational_fit :
  lo:float -> hi:float -> np:int -> nq:int -> (float -> float)
  -> float array * float array
(** Least-squares rational fit p/q ~ f on [lo, hi], q(0) = 1. *)

val replace_exp : lo:float -> hi:float -> expr -> expr
(** Replace each [Exp] node with a rational approximation valid while its
    argument stays in [lo, hi]. *)

val compile : expr -> float array -> float
(** Compile the tree to a closure — the NVRTC analog. *)

val eval_cost : ?expensive_flops:float -> expr -> float
(** Priced flops of one evaluation; an expensive call defaults to 50
    flops (a double-precision exp on GPUs). *)

val load_count : ?folded:bool -> expr -> int
(** Memory loads per evaluation; [folded] drops rational-polynomial
    coefficient loads (compile-time constants). *)

val fit_function :
  lo:float -> hi:float -> ?np:int -> ?nq:int -> (float -> float) -> expr -> expr
(** Fit an arbitrary bounded function and return the replacement applied
    to an argument expression — the DSL's core move (Cardioid fits whole
    rate expressions, which are bounded and smooth). *)
