(** The Table 1 activity registry: the nine completed iCoE activities,
    their science areas and programming-model approaches, linked to the
    modules of this reproduction that implement them. *)

type activity = {
  name : string;
  science_area : string;
  base_language : string;
  approaches : string list;
  modules : string list;  (** OCaml modules implementing the activity *)
}

val activities : activity list
val table1 : unit -> Icoe_util.Table.t
