(** The Table 1 activity registry: the nine completed iCoE activities,
    their science areas, and programming-model approaches, linked to the
    modules of this reproduction that implement them. *)

type activity = {
  name : string;
  science_area : string;
  base_language : string;
  approaches : string list;  (** explored; final ones first *)
  modules : string list;  (** OCaml modules implementing the activity here *)
}

let activities =
  [
    {
      name = "Cardioid";
      science_area = "Heart Modeling";
      base_language = "C++";
      approaches = [ "DSL"; "CUDA"; "OpenMP" ];
      modules = [ "Cardioid.Melodee"; "Cardioid.Ionic"; "Cardioid.Monodomain" ];
    };
    {
      name = "Cretin";
      science_area = "Non-LTE Atomic Kinetics";
      base_language = "Fortran";
      approaches = [ "OpenACC"; "CUDA" ];
      modules = [ "Cretin.Atomic"; "Cretin.Ratematrix"; "Cretin.Minikin" ];
    };
    {
      name = "ParaDyn";
      science_area = "Dislocation Dynamics";
      base_language = "Fortran";
      approaches = [ "OpenMP"; "OpenACC" ];
      modules = [ "Paradyn.Ir"; "Paradyn.Passes"; "Paradyn.Interp" ];
    };
    {
      name = "Molecular Dynamics (MD)";
      science_area = "Molecular Dynamics";
      base_language = "C";
      approaches = [ "CUDA" ];
      modules = [ "Ddcmd.Engine"; "Ddcmd.Potential"; "Ddcmd.Perf" ];
    };
    {
      name = "Seismic (SW4)";
      science_area = "Earthquakes";
      base_language = "Fortran ported to C++";
      approaches = [ "RAJA"; "CUDA" ];
      modules = [ "Sw4.Elastic"; "Sw4.Solver"; "Sw4.Scenario" ];
    };
    {
      name = "Virtual Beamline (VBL)";
      science_area = "Laser Propagation";
      base_language = "C++";
      approaches = [ "RAJA" ];
      modules = [ "Vbl.Beam"; "Vbl.Propagate"; "Fftlib.Fft" ];
    };
    {
      name = "Tools and Libraries";
      science_area = "Math Frameworks";
      base_language = "C/C++";
      approaches = [ "DSL"; "RAJA"; "Kokkos"; "OCCA"; "OpenMP"; "CUDA" ];
      modules =
        [ "Hypre.Boomeramg"; "Hypre.Boxloop"; "Sundials.Cvode"; "Mfem.Diffusion";
          "Mfem.Lor"; "Samrai.Hierarchy"; "Samrai.Cleverleaf" ];
    };
    {
      name = "Data Science";
      science_area = "DL and Data Analytics";
      base_language = "PyTorch, Spark, C++";
      approaches = [ "Accelerated PyTorch"; "Spark" ];
      modules =
        [ "Sparkle.Cluster"; "Lda.Vem"; "Dlearn.Distributed"; "Dlearn.Videonet";
          "Dlearn.Lbann"; "Havoq.Bfs" ];
    };
    {
      name = "Optimization Framework (Opt)";
      science_area = "Design Optimization";
      base_language = "C++";
      approaches = [ "CUDA"; "Job scheduler simulator" ];
      modules = [ "Opt.Topopt"; "Opt.Scheduler" ];
    };
  ]

let table1 () =
  let t =
    Icoe_util.Table.create ~title:"Table 1: Completed iCoE activities"
      ~aligns:[| Icoe_util.Table.Left; Icoe_util.Table.Left; Icoe_util.Table.Left; Icoe_util.Table.Left |]
      [ "Activity"; "Science Area"; "Base Language"; "Approach(es)" ]
  in
  List.iter
    (fun a ->
      Icoe_util.Table.add_row t
        [ a.name; a.science_area; a.base_language; String.concat ", " a.approaches ])
    activities;
  t
