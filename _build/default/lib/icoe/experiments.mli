(** One harness per table and figure of the paper. Each runs the real
    workload at laptop scale, prices device-dependent results on the
    hardware model, and returns rendered text with the paper's reference
    values alongside. The bench executable and the icoe_report CLI both
    dispatch through {!all}. *)

val all : (string * string * (unit -> string)) list
(** (id, description, harness) for every reproduced result, including
    the [ablations] design-choice studies. *)

val find : string -> (string * string * (unit -> string)) option

val run_all : unit -> string
