lib/icoe/registry.mli: Icoe_util
