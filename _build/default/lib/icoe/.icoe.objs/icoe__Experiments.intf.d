lib/icoe/experiments.mli: Hwsim
