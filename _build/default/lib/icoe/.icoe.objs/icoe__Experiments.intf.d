lib/icoe/experiments.mli:
