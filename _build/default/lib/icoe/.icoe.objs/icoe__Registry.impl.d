lib/icoe/registry.ml: Icoe_util List String
