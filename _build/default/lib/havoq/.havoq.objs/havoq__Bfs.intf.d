lib/havoq/bfs.mli: Graph
