lib/havoq/perf.mli: Graph
