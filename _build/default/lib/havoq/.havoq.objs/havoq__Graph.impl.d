lib/havoq/graph.ml: Array Icoe_util List
