lib/havoq/perf.ml: Bfs Float Graph Hwsim Sys
