lib/havoq/graph.mli: Icoe_util
