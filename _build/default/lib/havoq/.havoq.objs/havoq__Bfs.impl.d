lib/havoq/bfs.ml: Array Graph List Queue
