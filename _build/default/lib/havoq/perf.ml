(** The Table 2 machine model: historical best graph scale and GTEPS.

    HavoqGT's large-graph BFS is out-of-core: throughput is bounded by
    node-local storage bandwidth (flash/NVMe), and clusters additionally
    pay an all-to-all exchange efficiency. The largest runnable scale is
    set by aggregate storage capacity. Two calibrated constants cover all
    six machines:

    - [bytes_per_edge_traversal] = 28 B of storage traffic per traversed
      edge (semi-sorted out-of-core layout);
    - [cluster_efficiency] = 0.165, the fraction of aggregate storage
      bandwidth surviving the distributed exchange. *)

type machine = {
  name : string;
  year : int;
  nodes : int;
  storage_bw_gbs : float;  (** node-local storage bandwidth *)
  storage_tb : float;  (** node-local storage capacity *)
}

let bytes_per_edge_traversal = 28.0
let bytes_per_edge_storage = 45.0
let cluster_efficiency = 0.165
let edge_factor = 16.0

let machines =
  [
    { name = "Kraken"; year = 2011; nodes = 1; storage_bw_gbs = 1.5; storage_tb = 13.0 };
    { name = "Leviathan"; year = 2011; nodes = 1; storage_bw_gbs = 1.5; storage_tb = 50.0 };
    { name = "Hyperion"; year = 2011; nodes = 64; storage_bw_gbs = 1.5; storage_tb = 0.8 };
    { name = "Bertha"; year = 2014; nodes = 1; storage_bw_gbs = 1.5; storage_tb = 100.0 };
    { name = "Catalyst"; year = 2014; nodes = 300; storage_bw_gbs = 2.2; storage_tb = 2.7 };
    {
      name = "Final System";
      year = 2018;
      nodes = 2048;
      storage_bw_gbs = Hwsim.Link.nvme.Hwsim.Link.bw_gbs;
      storage_tb = 1.6;
    };
  ]

(** Largest Graph500 scale whose edge list fits in aggregate storage. *)
let max_scale m =
  let bytes = float_of_int m.nodes *. m.storage_tb *. 1e12 in
  let vertices = bytes /. (edge_factor *. bytes_per_edge_storage) in
  int_of_float (Float.log2 vertices)

(** Modelled GTEPS: aggregate storage bandwidth over traversal traffic,
    discounted by the exchange efficiency on multi-node machines. *)
let gteps m =
  let eff = if m.nodes = 1 then 1.0 else cluster_efficiency in
  float_of_int m.nodes *. m.storage_bw_gbs *. 1e9 *. eff
  /. bytes_per_edge_traversal /. 1e9

(** Actually-measured GTEPS of the in-memory hybrid BFS on this machine
    (wall clock): traversed-edge count over elapsed seconds / 1e9. *)
let measured_gteps (g : Graph.t) ~src =
  let t0 = Sys.time () in
  let s = Bfs.hybrid g ~src in
  let dt = Sys.time () -. t0 in
  if dt <= 0.0 then 0.0
  else float_of_int s.Bfs.edges_traversed /. dt /. 1e9

(** The published Table 2 rows for comparison in the bench output. *)
let paper_rows =
  [
    ("Kraken", 2011, 1, 34, 0.053);
    ("Leviathan", 2011, 1, 36, 0.053);
    ("Hyperion", 2011, 64, 36, 0.601);
    ("Bertha", 2014, 1, 37, 0.054);
    ("Catalyst", 2014, 300, 40, 4.175);
    ("Final System", 2018, 2048, 42, 67.258);
  ]
