(** The Table 2 machine model: historical best graph scale and GTEPS.

    HavoqGT's large-graph BFS is out-of-core: throughput is bounded by
    node-local storage bandwidth, clusters additionally pay an all-to-all
    exchange efficiency, and the largest runnable scale is set by
    aggregate storage capacity. Two calibrated constants cover all six
    machines. *)

type machine = {
  name : string;
  year : int;
  nodes : int;
  storage_bw_gbs : float;
  storage_tb : float;
}

val bytes_per_edge_traversal : float
val bytes_per_edge_storage : float
val cluster_efficiency : float
val edge_factor : float

val machines : machine list
(** Kraken, Leviathan, Hyperion, Bertha, Catalyst, Final System. *)

val max_scale : machine -> int
(** Largest Graph500 scale whose edge list fits in aggregate storage. *)

val gteps : machine -> float
(** Modelled GTEPS. *)

val measured_gteps : Graph.t -> src:int -> float
(** Actually-measured GTEPS of the in-memory hybrid BFS on this machine. *)

val paper_rows : (string * int * int * int * float) list
(** The published Table 2 rows: (name, year, nodes, scale, GTEPS). *)
