(** In-memory graphs in CSR form plus the Graph500-style Kronecker (RMAT)
    generator that HavoqGT-scale runs are measured on. *)

type t = {
  n : int;  (** vertices *)
  m : int;  (** directed edges (both directions stored for undirected) *)
  row_ptr : int array;
  adj : int array;
}

val degree : t -> int -> int

val of_edges : n:int -> (int * int) list -> t
(** Build an undirected graph (each edge stored in both directions). *)

val rmat :
  ?edge_factor:int -> ?a:float -> ?b:float -> ?c:float ->
  rng:Icoe_util.Rng.t -> scale:int -> unit -> t
(** RMAT generator: 2^scale vertices, edge_factor * 2^scale edges,
    Graph500 parameters (0.57, 0.19, 0.19). Self-loops dropped;
    multi-edges kept, as in Graph500. *)

val erdos_renyi : rng:Icoe_util.Rng.t -> n:int -> edges:int -> unit -> t
(** Uniform random graph for comparison (no degree skew). *)
