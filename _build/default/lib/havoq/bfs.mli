(** Breadth-first search: top-down, the direction-optimizing hybrid
    (Beamer-style) that Graph500 codes use, and connected components. *)

type stats = {
  parents : int array;  (** -1 for unreached; parents.(src) = src *)
  reached : int;
  edges_traversed : int;
  iterations : int;
  switches : int;  (** top-down <-> bottom-up transitions (hybrid only) *)
}

val top_down : Graph.t -> src:int -> stats

val hybrid : ?alpha:int -> ?beta:int -> Graph.t -> src:int -> stats
(** Direction-optimizing BFS: switches to bottom-up when the frontier's
    edge count grows past 1/alpha of the unexplored edges, back when the
    frontier shrinks below n/beta. Traverses far fewer edges on skewed
    graphs. *)

val connected_components : Graph.t -> int array
(** Label propagation to a fixed point; returns per-vertex labels. *)

val num_components : int array -> int

val validate : Graph.t -> src:int -> stats -> bool
(** Graph500-style tree validation: every parent edge exists and levels
    are consistent with a reference BFS. *)
