(** In-memory graphs in CSR form plus the Graph500-style Kronecker (RMAT)
    generator HavoqGT-scale runs are measured on. *)

type t = {
  n : int;  (** vertices *)
  m : int;  (** directed edges (both directions stored for undirected) *)
  row_ptr : int array;
  adj : int array;
}

let degree g v = g.row_ptr.(v + 1) - g.row_ptr.(v)

let of_edges ~n edges =
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let row_ptr = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    row_ptr.(v + 1) <- row_ptr.(v) + deg.(v)
  done;
  let adj = Array.make row_ptr.(n) 0 in
  let fill = Array.copy row_ptr in
  List.iter
    (fun (u, v) ->
      adj.(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  { n; m = row_ptr.(n); row_ptr; adj }

(** RMAT generator: 2^scale vertices, [edge_factor] * 2^scale undirected
    edges, Graph500 parameters (a, b, c) = (0.57, 0.19, 0.19).
    Self-loops are dropped; multi-edges are kept (as in Graph500). *)
let rmat ?(edge_factor = 16) ?(a = 0.57) ?(b = 0.19) ?(c = 0.19)
    ~(rng : Icoe_util.Rng.t) ~scale () =
  let n = 1 lsl scale in
  let nedges = edge_factor * n in
  let edges = ref [] in
  for _ = 1 to nedges do
    let u = ref 0 and v = ref 0 in
    for bit = scale - 1 downto 0 do
      let r = Icoe_util.Rng.float rng in
      let du, dv =
        if r < a then (0, 0)
        else if r < a +. b then (0, 1)
        else if r < a +. b +. c then (1, 0)
        else (1, 1)
      in
      u := !u lor (du lsl bit);
      v := !v lor (dv lsl bit)
    done;
    if !u <> !v then edges := (!u, !v) :: !edges
  done;
  of_edges ~n !edges

(** Uniform random graph for comparison. *)
let erdos_renyi ~(rng : Icoe_util.Rng.t) ~n ~edges () =
  let es = ref [] in
  let cnt = ref 0 in
  while !cnt < edges do
    let u = Icoe_util.Rng.int rng n and v = Icoe_util.Rng.int rng n in
    if u <> v then begin
      es := (u, v) :: !es;
      incr cnt
    end
  done;
  of_edges ~n !es
