(** Compiler passes on the loop IR.

    [fuse] merges the elementwise loops into one (the hand optimization
    that wrecked CPU performance in the paper). [slnsp] is the Single
    Level No Synchronization Parallelism pattern added to XL Fortran:
    with one thread per iteration and no cross-loop synchronization,
    dataflow optimization works across the fused body — realized here by
    promoting same-index intermediates into loop-private scalars and
    register-caching input loads. [dse] removes stores and scalar
    definitions nothing observes, powered by the privatization info. *)

val fuse : Ir.program -> Ir.program
(** Merge all loops into one (valid for elementwise bodies). *)

val slnsp : Ir.program -> Ir.program
(** Fuse + privatize intermediates + input-load CSE. Semantics preserved:
    outputs are still stored globally (DSE decides what is dead). *)

val dse : Ir.program -> Ir.program
(** Dead-store elimination to a fixed point; program outputs are always
    kept. *)
