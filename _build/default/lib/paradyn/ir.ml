(** A miniature loop IR for the ParaDyn compiler study (Sec 4.8).

    Programs are sequences of elementwise loops over arrays of a common
    length — exactly the shape of ParaDyn's "many small loops" that defeat
    GPU offload through launch overhead and intermediate-array traffic.
    The compiler passes in [Passes] transform programs; the interpreter in
    [Interp] runs them for real while counting global loads and stores,
    which is what NVProf measured for Fig 6. *)

type expr =
  | Load of string  (** global array element at the loop index *)
  | Scalar of string  (** loop-private scalar (register) *)
  | Const of float
  | Binop of [ `Add | `Sub | `Mul | `Div ] * expr * expr

type stmt =
  | Store of string * expr  (** global array write at the loop index *)
  | Def of string * expr  (** loop-private scalar definition *)

type loop = { body : stmt list }

type program = {
  loops : loop list;
  inputs : string list;  (** arrays provided by the caller *)
  outputs : string list;  (** arrays whose final values matter *)
}

let rec expr_reads = function
  | Load a -> ([ a ], [])
  | Scalar s -> ([], [ s ])
  | Const _ -> ([], [])
  | Binop (_, a, b) ->
      let la, sa = expr_reads a and lb, sb = expr_reads b in
      (la @ lb, sa @ sb)

(* arrays written / read by a statement *)
let stmt_writes = function Store (a, _) -> Some a | Def _ -> None
let stmt_scalar = function Def (s, _) -> Some s | Store _ -> None

(** All array names appearing in a program. *)
let arrays p =
  let acc = ref [] in
  let add a = if not (List.mem a !acc) then acc := a :: !acc in
  List.iter add p.inputs;
  List.iter
    (fun l ->
      List.iter
        (fun st ->
          (match stmt_writes st with Some a -> add a | None -> ());
          let e = match st with Store (_, e) | Def (_, e) -> e in
          List.iter add (fst (expr_reads e)))
        l.body)
    p.loops;
  List.rev !acc

(** The representative ParaDyn kernel: a chain of small elementwise loops
    feeding one result through intermediate arrays. t1..t3 are also
    consumed by later phases of the timestep (program outputs), while t4
    and t5 are computed but never used — the dead stores the XL-Fortran
    private-clause dataflow work exposed. *)
let paradyn_kernel =
  {
    inputs = [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ];
    outputs = [ "out"; "t1"; "t2"; "t3" ];
    loops =
      [
        { body = [ Store ("t1", Binop (`Mul, Binop (`Add, Load "a", Load "b"), Load "c")) ] };
        { body = [ Store ("t2", Binop (`Mul, Binop (`Add, Load "t1", Load "d"), Load "e")) ] };
        { body = [ Store ("t3", Binop (`Mul, Binop (`Add, Load "t2", Load "f"), Load "a")) ] };
        (* dead intermediates: stored, never read again *)
        { body = [ Store ("t4", Binop (`Add, Load "t2", Load "g")) ] };
        { body = [ Store ("out", Binop (`Mul, Binop (`Add, Load "t3", Load "t1"), Load "h")) ] };
        { body = [ Store ("t5", Binop (`Add, Load "t3", Load "b")) ] };
      ];
  }
