(** Executing interpreter with NVProf-style global load/store counters,
    plus the Fig 6 time model (elementwise GPU kernels are traffic-bound:
    time ~ loads + weighted stores, plus one launch per loop). *)

type counts = {
  loads : int;  (** global loads per element *)
  stores : int;  (** global stores per element *)
  launches : int;
}

val run :
  Ir.program -> inputs:(string * float array) list ->
  (string, float array) Hashtbl.t * counts
(** Execute over the inputs' common length; returns the final environment
    (every array by name) and per-element counters. *)

val gpu_time : n:int -> counts -> float
(** Fig 6 time model at [n] elements on the V100. *)

val cpu_time : n:int -> fused_source:bool -> counts -> float
(** CPU time model: small loops keep intermediates cache-resident (good
    CPU performance), while source-level fusion pays a register-pressure
    penalty — why hand-merging the loops "significantly decreased CPU
    performance" and a compiler approach (SLNSP) was needed instead. *)
