(** Executing interpreter with NVProf-style global load/store counters,
    plus the Fig 6 time model (GPU elementwise kernels are traffic-bound:
    time ~ loads + stores, plus one launch per loop). *)

open Ir

type counts = { loads : int; stores : int; launches : int }

(** Run [p] with the given input arrays (all of equal length); returns
    (environment of all arrays, per-iteration-total counters). *)
let run (p : program) ~(inputs : (string * float array) list) =
  let n =
    match inputs with
    | (_, a) :: _ -> Array.length a
    | [] -> invalid_arg "Interp.run: no inputs"
  in
  let env = Hashtbl.create 16 in
  List.iter (fun (name, a) -> Hashtbl.replace env name (Array.copy a)) inputs;
  List.iter
    (fun a -> if not (Hashtbl.mem env a) then Hashtbl.replace env a (Array.make n 0.0))
    (arrays p);
  let loads = ref 0 and stores = ref 0 and launches = ref 0 in
  List.iter
    (fun l ->
      incr launches;
      for i = 0 to n - 1 do
        let scalars = Hashtbl.create 8 in
        let rec eval = function
          | Load a ->
              incr loads;
              (Hashtbl.find env a).(i)
          | Scalar s -> Hashtbl.find scalars s
          | Const c -> c
          | Binop (op, a, b) -> (
              let va = eval a and vb = eval b in
              match op with
              | `Add -> va +. vb
              | `Sub -> va -. vb
              | `Mul -> va *. vb
              | `Div -> va /. vb)
        in
        List.iter
          (fun st ->
            match st with
            | Store (a, e) ->
                incr stores;
                (Hashtbl.find env a).(i) <- eval e
            | Def (s, e) -> Hashtbl.replace scalars s (eval e))
          l.body
      done)
    p.loops;
  ( env,
    {
      loads = !loads / n;
      stores = !stores / n;
      launches = !launches;
    } )

(** Fig 6 time model: per-element traffic over effective bandwidth plus
    kernel-launch overhead per loop. Streaming stores bypass part of the
    read-modify-write cost, hence the 0.6 weight. *)
let gpu_time ~n (c : counts) =
  let d = Hwsim.Device.v100 in
  let bytes =
    (float_of_int (n * c.loads) +. (0.6 *. float_of_int (n * c.stores))) *. 8.0
  in
  (float_of_int c.launches *. d.Hwsim.Device.launch_overhead_s)
  +. (bytes /. (d.Hwsim.Device.mem_bw_gbs *. 1e9 *. 0.75))

(** The CPU side of the Sec 4.8 story: ParaDyn's original small loops
    "operate on a subset of the data that remains cache resident across
    loops, resulting in good CPU performance" — so intermediate-array
    traffic is nearly free on the CPU, while a source-level merged loop
    bloats the per-iteration working set (register spills, lost
    vectorization), modelled as a per-statement drag beyond what fits in
    registers. This is why the team needed the *compiler* (SLNSP) rather
    than hand fusion: the same source keeps its CPU behaviour. *)
let cpu_time ~n ~(fused_source : bool) (c : counts) =
  let d = Hwsim.Device.power9 in
  (* intermediates stay in L2 across the small loops: only the true
     input/output streams hit DRAM; charge ~60% of counted traffic *)
  let bytes = float_of_int (n * (c.loads + c.stores)) *. 8.0 *. 0.6 in
  let bw = d.Hwsim.Device.mem_bw_gbs *. 1e9 *. 0.5 in
  let spill_penalty =
    if fused_source then 1.45 (* register pressure + lost vectorization *)
    else 1.0
  in
  spill_penalty *. (bytes /. bw)
