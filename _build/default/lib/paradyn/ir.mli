(** A miniature loop IR for the ParaDyn compiler study (Sec 4.8):
    sequences of elementwise loops over same-length arrays — the shape of
    ParaDyn's "many small loops" that defeat GPU offload through launch
    overhead and intermediate-array traffic. *)

type expr =
  | Load of string  (** global array element at the loop index *)
  | Scalar of string  (** loop-private scalar (register) *)
  | Const of float
  | Binop of [ `Add | `Sub | `Mul | `Div ] * expr * expr

type stmt =
  | Store of string * expr  (** global array write at the loop index *)
  | Def of string * expr  (** loop-private scalar definition *)

type loop = { body : stmt list }

type program = {
  loops : loop list;
  inputs : string list;
  outputs : string list;  (** arrays whose final values matter *)
}

val expr_reads : expr -> string list * string list
(** (array loads, scalar reads). *)

val stmt_writes : stmt -> string option
val stmt_scalar : stmt -> string option

val arrays : program -> string list
(** Every array name appearing in the program. *)

val paradyn_kernel : program
(** The representative kernel behind Fig 6: a chain of elementwise loops
    with live intermediates (also outputs) and two dead ones. *)
