lib/paradyn/passes.ml: Hashtbl Ir List
