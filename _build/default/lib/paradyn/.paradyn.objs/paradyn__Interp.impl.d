lib/paradyn/interp.ml: Array Hashtbl Hwsim Ir List
