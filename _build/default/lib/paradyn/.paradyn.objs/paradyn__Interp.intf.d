lib/paradyn/interp.mli: Hashtbl Ir
