lib/paradyn/ir.mli:
