lib/paradyn/passes.mli: Ir
