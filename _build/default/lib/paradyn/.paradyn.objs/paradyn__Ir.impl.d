lib/paradyn/ir.ml: List
