(** Execution policies: the paper's programming-model portfolio.

    Each policy is a (device side, efficiency profile, launch multiplier)
    triple. The efficiency numbers encode the paper's cross-cutting
    findings as calibration, applied uniformly:

    - CUDA is the performance ceiling on GPUs;
    - RAJA lands ~30% below hand CUDA on stencil codes (Sec 4.9) and worse
      on transpose-like kernels until recoded (Sec 4.11);
    - OpenACC matches CUDA Fortran on rate kernels (Sec 4.3);
    - OpenMP-target is competitive for bandwidth-bound kernels (Sec 4.1);
    - OpenMP on the host scales by threads with a memory-bandwidth roof. *)

type side = Host | Accelerator

type t =
  | Serial
  | Openmp of int  (** host threads *)
  | Omp_target  (** OpenMP 4.5 offload *)
  | Openacc
  | Raja_cuda
  | Cuda
  | Cuda_shared  (** hand CUDA using on-chip shared memory (sw4lite) *)

let side = function
  | Serial | Openmp _ -> Host
  | Omp_target | Openacc | Raja_cuda | Cuda | Cuda_shared -> Accelerator

let name = function
  | Serial -> "serial"
  | Openmp n -> Fmt.str "omp(%d)" n
  | Omp_target -> "omp-target"
  | Openacc -> "openacc"
  | Raja_cuda -> "raja-cuda"
  | Cuda -> "cuda"
  | Cuda_shared -> "cuda-shared"

(** Roofline efficiency of this policy on device [d]. The serial policy uses
    one lane of the CPU; OpenMP scales lanes. *)
let efficiency (p : t) (d : Hwsim.Device.t) : Hwsim.Roofline.efficiency =
  let open Hwsim.Roofline in
  match p with
  | Serial ->
      (* one core: compute scales 1/lanes (unvectorized FEM-style code
         reaches ~half of a core's peak), and a single core with hardware
         prefetch draws ~22% of socket bandwidth *)
      eff
        ~compute:(max 0.01 (0.5 /. float_of_int d.Hwsim.Device.lanes))
        ~bandwidth:0.22 ()
  | Openmp n ->
      let frac = min 1.0 (float_of_int n /. float_of_int d.Hwsim.Device.lanes) in
      eff ~compute:(0.75 *. frac) ~bandwidth:(min 0.85 (0.25 +. (0.75 *. frac))) ()
  | Omp_target -> eff ~compute:0.5 ~bandwidth:0.72 ()
  | Openacc -> eff ~compute:0.52 ~bandwidth:0.72 ()
  | Raja_cuda -> eff ~compute:0.42 ~bandwidth:0.66 ()
  | Cuda -> eff ~compute:0.6 ~bandwidth:0.78 ()
  | Cuda_shared -> eff ~compute:0.85 ~bandwidth:0.8 ()

(** Per-launch overhead multiplier relative to the device baseline. RAJA
    and the directive models add dispatch cost on top of a raw launch. *)
let launch_multiplier = function
  | Serial -> 0.0
  | Openmp _ -> 1.0
  | Omp_target -> 1.6
  | Openacc -> 1.5
  | Raja_cuda -> 1.3
  | Cuda | Cuda_shared -> 1.0
