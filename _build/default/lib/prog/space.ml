(** Memory spaces and placed arrays.

    A [Darray.t] wraps a real [float array] (the values are genuinely
    computed on) plus a placement tag. Moving it between spaces charges the
    host link on a clock — so "keep data resident on the GPU", the paper's
    most repeated lesson, is visible as a measurable cost when violated. *)

type space = Host_mem | Device_mem | Unified

let space_name = function
  | Host_mem -> "host"
  | Device_mem -> "device"
  | Unified -> "unified"

module Darray = struct
  type t = {
    mutable data : float array;
    mutable space : space;
    mutable device_copy_valid : bool;
        (** for Unified: whether pages are currently resident device-side *)
  }

  let create ?(space = Host_mem) n =
    { data = Array.make n 0.0; space; device_copy_valid = space <> Host_mem }

  let of_array ?(space = Host_mem) a =
    { data = a; space; device_copy_valid = space <> Host_mem }

  let length t = Array.length t.data
  let get t i = t.data.(i)
  let set t i v = t.data.(i) <- v
  let data t = t.data
  let bytes t = 8.0 *. float_of_int (Array.length t.data)

  (** Explicit move; charges the link and flips placement. No charge if
      already there. *)
  let move t ~(to_ : space) ~(link : Hwsim.Link.t) ~(clock : Hwsim.Clock.t) =
    if t.space <> to_ then begin
      let dt =
        match (t.space, to_) with
        | Unified, _ | _, Unified ->
            Hwsim.Link.unified_memory_transfer ~link ~bytes:(bytes t)
        | _ -> Hwsim.Link.transfer_time link ~bytes:(bytes t)
      in
      Hwsim.Clock.tick clock ~phase:"data-motion" dt;
      t.space <- to_;
      t.device_copy_valid <- to_ <> Host_mem
    end

  (** Ensure the array is visible to [side] executions, migrating if not. *)
  let ensure t ~(side : Policy.side) ~link ~clock =
    match (side, t.space) with
    | Policy.Host, (Device_mem | Unified) -> move t ~to_:Host_mem ~link ~clock
    | Policy.Accelerator, Host_mem -> move t ~to_:Device_mem ~link ~clock
    | Policy.Host, Host_mem -> ()
    | Policy.Accelerator, (Device_mem | Unified) -> ()
end
