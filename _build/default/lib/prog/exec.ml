(** The forall/reduce layer: a miniature RAJA.

    [forall ctx ~n ~flops_per ~bytes_per f] really executes [f i] for every
    i (the numerics are genuine) and charges the context clock with the
    roofline price of the loop under the context's policy and device,
    including launch overhead. Kernel fusion is then a first-class,
    measurable transformation: one fused [forall] pays one launch where k
    separate ones pay k (the ParaDyn and sw4lite merging stories). *)

type ctx = {
  policy : Policy.t;
  device : Hwsim.Device.t;
  link : Hwsim.Link.t;
  clock : Hwsim.Clock.t;
  mutable launches : int;
  mutable flops : float;
  mutable bytes : float;
}

let make_ctx ?(link = Hwsim.Link.nvlink2) ~policy ~device ~clock () =
  { policy; device; link; clock; launches = 0; flops = 0.0; bytes = 0.0 }

(** Context for one Sierra V100 under a policy. *)
let on_v100 ?(policy = Policy.Cuda) clock =
  make_ctx ~policy ~device:Hwsim.Device.v100 ~clock ()

(** Context for a P9 socket under OpenMP. *)
let on_p9 ?(policy = Policy.Openmp 22) clock =
  make_ctx ~policy ~device:Hwsim.Device.power9 ~link:Hwsim.Link.nvlink2 ~clock ()

let charge ctx ~phase ~n ~flops_per ~bytes_per =
  let k =
    Hwsim.Kernel.make ~name:phase
      ~flops:(float_of_int n *. flops_per)
      ~bytes:(float_of_int n *. bytes_per)
      ~launches:0 ()
  in
  let eff = Policy.efficiency ctx.policy ctx.device in
  let launch =
    Policy.launch_multiplier ctx.policy *. ctx.device.Hwsim.Device.launch_overhead_s
  in
  let dt = launch +. Hwsim.Roofline.time ~eff ctx.device k in
  ctx.launches <- ctx.launches + 1;
  ctx.flops <- ctx.flops +. k.Hwsim.Kernel.flops;
  ctx.bytes <- ctx.bytes +. k.Hwsim.Kernel.bytes;
  Hwsim.Clock.tick ctx.clock ~phase dt

(** Parallel-for: runs the body for real, charges simulated time. *)
let forall ctx ?(phase = "forall") ~n ~flops_per ~bytes_per f =
  for i = 0 to n - 1 do
    f i
  done;
  charge ctx ~phase ~n ~flops_per ~bytes_per

(** Reduction returning the fold result; charged like a forall plus a
    log-depth combine term. *)
let reduce ctx ?(phase = "reduce") ~n ~flops_per ~bytes_per ~init ~combine f =
  let acc = ref init in
  for i = 0 to n - 1 do
    acc := combine !acc (f i)
  done;
  charge ctx ~phase ~n ~flops_per ~bytes_per;
  (* tree-combine across lanes *)
  let depth =
    Float.of_int ctx.device.Hwsim.Device.lanes |> Float.log2 |> Float.ceil
  in
  Hwsim.Clock.tick ctx.clock ~phase (depth *. 0.2e-6);
  !acc

(** Price a host<->device transfer of [bytes] (e.g. halo exchange staging). *)
let transfer ctx ?(phase = "data-motion") ~bytes () =
  Hwsim.Clock.tick ctx.clock ~phase (Hwsim.Link.transfer_time ctx.link ~bytes)

(** Simulated time total so far on this context's clock. *)
let elapsed ctx = Hwsim.Clock.total ctx.clock
