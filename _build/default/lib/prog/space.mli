(** Memory spaces and placed arrays.

    A [Darray.t] wraps a real [float array] plus a placement tag. Moving
    it between spaces charges the host link on a clock — so "keep data
    resident on the GPU", the paper's most repeated lesson, is visible as
    a measurable cost when violated. *)

type space = Host_mem | Device_mem | Unified

val space_name : space -> string

module Darray : sig
  type t = {
    mutable data : float array;
    mutable space : space;
    mutable device_copy_valid : bool;
  }

  val create : ?space:space -> int -> t
  val of_array : ?space:space -> float array -> t
  val length : t -> int
  val get : t -> int -> float
  val set : t -> int -> float -> unit
  val data : t -> float array
  val bytes : t -> float

  val move : t -> to_:space -> link:Hwsim.Link.t -> clock:Hwsim.Clock.t -> unit
  (** Explicit migration; charges the link (no charge if already there).
      Unified-memory moves pay per-page fault costs. *)

  val ensure : t -> side:Policy.side -> link:Hwsim.Link.t -> clock:Hwsim.Clock.t -> unit
  (** Make the array visible to executions on [side], migrating if not. *)
end
