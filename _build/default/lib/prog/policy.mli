(** Execution policies: the paper's programming-model portfolio.

    Each policy carries a device side, a roofline efficiency profile and a
    launch-overhead multiplier. The calibration encodes the paper's
    cross-cutting findings: CUDA is the GPU ceiling, hand-tuned
    shared-memory CUDA beats it, RAJA lands ~30% behind CUDA, the
    directive models are competitive for bandwidth-bound kernels, and
    host OpenMP scales by threads against a memory-bandwidth roof. *)

type side = Host | Accelerator

type t =
  | Serial
  | Openmp of int  (** host threads *)
  | Omp_target  (** OpenMP 4.5 offload *)
  | Openacc
  | Raja_cuda
  | Cuda
  | Cuda_shared  (** hand CUDA using on-chip shared memory (sw4lite) *)

val side : t -> side
val name : t -> string

val efficiency : t -> Hwsim.Device.t -> Hwsim.Roofline.efficiency
(** Roofline efficiency of this policy on a device. *)

val launch_multiplier : t -> float
(** Per-launch overhead relative to the device baseline (0 for serial). *)
