(** Umpire-style memory pools (Sec 4.10.5).

    SAMRAI's GPU port allocates everything from pools to amortize raw
    allocation cost: an expensive backing allocation is charged only on
    high-water-mark growth, pooled (re)allocations are nearly free. *)

type t = {
  name : string;
  raw_alloc_cost_s : float;
  pooled_alloc_cost_s : float;
  mutable high_water_bytes : float;
  mutable in_use_bytes : float;
  mutable raw_allocs : int;
  mutable pooled_allocs : int;
}

val create : ?raw_alloc_cost_s:float -> ?pooled_alloc_cost_s:float -> string -> t

val alloc : t -> bytes:float -> clock:Hwsim.Clock.t -> unit
(** Charge the clock with a pooled or raw allocation cost. *)

val free : t -> bytes:float -> unit

val unpooled_cost : t -> float
(** What the same allocation pattern would have cost without a pool. *)

val pooled_cost : t -> float
val pp : Format.formatter -> t -> unit
