(** The forall/reduce layer: a miniature RAJA.

    [forall] really executes its body (the numerics are genuine) and
    charges the context clock with the roofline price of the loop under
    the context's policy and device, including launch overhead. Kernel
    fusion is then a first-class, measurable transformation: one fused
    [forall] pays one launch where k separate ones pay k. *)

type ctx = {
  policy : Policy.t;
  device : Hwsim.Device.t;
  link : Hwsim.Link.t;
  clock : Hwsim.Clock.t;
  mutable launches : int;
  mutable flops : float;
  mutable bytes : float;
}

val make_ctx :
  ?link:Hwsim.Link.t ->
  policy:Policy.t ->
  device:Hwsim.Device.t ->
  clock:Hwsim.Clock.t ->
  unit ->
  ctx

val on_v100 : ?policy:Policy.t -> Hwsim.Clock.t -> ctx
(** Context for one Sierra V100 (default policy CUDA). *)

val on_p9 : ?policy:Policy.t -> Hwsim.Clock.t -> ctx
(** Context for a P9 socket (default policy OpenMP over all cores). *)

val charge : ctx -> phase:string -> n:int -> flops_per:float -> bytes_per:float -> unit
(** Price an n-element loop without running a body (for callers that
    executed the work themselves). *)

val forall :
  ctx -> ?phase:string -> n:int -> flops_per:float -> bytes_per:float ->
  (int -> unit) -> unit
(** Run the body for every index and charge simulated time. *)

val reduce :
  ctx -> ?phase:string -> n:int -> flops_per:float -> bytes_per:float ->
  init:'a -> combine:('a -> 'a -> 'a) -> (int -> 'a) -> 'a
(** Fold over indices; charged like a forall plus a log-depth combine. *)

val transfer : ctx -> ?phase:string -> bytes:float -> unit -> unit
(** Price a host<->device transfer over the context's link. *)

val elapsed : ctx -> float
