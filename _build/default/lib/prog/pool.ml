(** Umpire-style memory pools.

    SAMRAI's GPU port allocates everything from pools to amortize raw
    allocation cost (Sec 4.10.5). The pool model charges an expensive
    backing allocation only on high-water-mark growth; pooled (re)allocation
    is nearly free. Statistics feed the SAMRAI ablation bench. *)

type t = {
  name : string;
  raw_alloc_cost_s : float;  (** cudaMalloc-like cost per backing allocation *)
  pooled_alloc_cost_s : float;
  mutable high_water_bytes : float;
  mutable in_use_bytes : float;
  mutable raw_allocs : int;
  mutable pooled_allocs : int;
}

let create ?(raw_alloc_cost_s = 100e-6) ?(pooled_alloc_cost_s = 0.3e-6) name =
  {
    name;
    raw_alloc_cost_s;
    pooled_alloc_cost_s;
    high_water_bytes = 0.0;
    in_use_bytes = 0.0;
    raw_allocs = 0;
    pooled_allocs = 0;
  }

(** Allocate [bytes]; charges [clock] with either a pooled or a raw cost. *)
let alloc t ~bytes ~(clock : Hwsim.Clock.t) =
  assert (bytes >= 0.0);
  t.in_use_bytes <- t.in_use_bytes +. bytes;
  if t.in_use_bytes > t.high_water_bytes then begin
    t.high_water_bytes <- t.in_use_bytes;
    t.raw_allocs <- t.raw_allocs + 1;
    Hwsim.Clock.tick clock ~phase:"alloc" t.raw_alloc_cost_s
  end
  else begin
    t.pooled_allocs <- t.pooled_allocs + 1;
    Hwsim.Clock.tick clock ~phase:"alloc" t.pooled_alloc_cost_s
  end

let free t ~bytes =
  assert (bytes >= 0.0);
  t.in_use_bytes <- max 0.0 (t.in_use_bytes -. bytes)

(** What the same allocation pattern would have cost without a pool. *)
let unpooled_cost t =
  float_of_int (t.raw_allocs + t.pooled_allocs) *. t.raw_alloc_cost_s

let pooled_cost t =
  (float_of_int t.raw_allocs *. t.raw_alloc_cost_s)
  +. (float_of_int t.pooled_allocs *. t.pooled_alloc_cost_s)

let pp ppf t =
  Fmt.pf ppf "pool %s: %d raw, %d pooled, hwm %.3g MB" t.name t.raw_allocs
    t.pooled_allocs (t.high_water_bytes /. 1e6)
