lib/prog/space.ml: Array Hwsim Policy
