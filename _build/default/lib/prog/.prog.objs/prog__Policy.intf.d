lib/prog/policy.mli: Hwsim
