lib/prog/space.mli: Hwsim Policy
