lib/prog/exec.mli: Hwsim Policy
