lib/prog/exec.ml: Float Hwsim Policy
