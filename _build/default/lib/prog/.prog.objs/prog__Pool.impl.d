lib/prog/pool.ml: Fmt Hwsim
