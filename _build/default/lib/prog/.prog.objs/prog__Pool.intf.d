lib/prog/pool.mli: Format Hwsim
