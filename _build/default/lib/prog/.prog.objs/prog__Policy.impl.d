lib/prog/policy.ml: Fmt Hwsim
