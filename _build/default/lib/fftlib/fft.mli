(** Complex radix-2 FFT — the cuFFT analog for VBL's split-step method.
    Data is interleaved (re, im) in a flat float array of length 2n. *)

val is_pow2 : int -> bool

val transform : ?inverse:bool -> float array -> unit
(** In-place FFT of length n (power of two); [inverse] includes the 1/n
    normalization. *)

val dft : ?inverse:bool -> float array -> float array
(** Out-of-place convenience: a fresh transformed copy. *)

val transpose_naive : n:int -> float array -> float array -> unit
(** Strided complex matrix transpose (the slow RAJA-port shape of
    Sec 4.11). *)

val transpose_tiled : ?tile:int -> n:int -> float array -> float array -> unit
(** Tiled transpose (the hand-CUDA rewrite that won). Identical results. *)

val transform_2d : ?inverse:bool -> ?tiled:bool -> n:int -> float array -> unit
(** 2D FFT of an n x n complex field via row FFTs + transposes. *)

val fft_work : int -> Hwsim.Kernel.t
(** Work volume of one n-point 1D FFT (5 n log2 n flops). *)

val transpose_time : n:int -> device:Hwsim.Device.t -> [ `Naive | `Tiled ] -> float
(** Simulated transpose time: same bytes, very different achieved
    bandwidth. *)
