(** Complex radix-2 FFT — the cuFFT analog VBL's split-step algorithm
    leans on. Data is interleaved (re, im) in a flat float array of length
    2n. In-place, iterative Cooley-Tukey with bit-reversal permutation. *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* bit reversal permutation, in place *)
let bit_reverse a n =
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = a.(2 * i) and ti = a.((2 * i) + 1) in
      a.(2 * i) <- a.(2 * !j);
      a.((2 * i) + 1) <- a.((2 * !j) + 1);
      a.(2 * !j) <- tr;
      a.((2 * !j) + 1) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done

(** In-place FFT of length n (power of 2); [inverse] includes the 1/n
    normalization. *)
let transform ?(inverse = false) a =
  let n = Array.length a / 2 in
  assert (is_pow2 n);
  bit_reverse a n;
  let sign = if inverse then 1.0 else -1.0 in
  let len = ref 2 in
  while !len <= n do
    let ang = sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wr = cos ang and wi = sin ang in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = 0 to (!len / 2) - 1 do
        let u = !i + k and v = !i + k + (!len / 2) in
        let ur = a.(2 * u) and ui = a.((2 * u) + 1) in
        let vr = (a.(2 * v) *. !cr) -. (a.((2 * v) + 1) *. !ci) in
        let vi = (a.(2 * v) *. !ci) +. (a.((2 * v) + 1) *. !cr) in
        a.(2 * u) <- ur +. vr;
        a.((2 * u) + 1) <- ui +. vi;
        a.(2 * v) <- ur -. vr;
        a.((2 * v) + 1) <- ui -. vi;
        let nr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := nr
      done;
      i := !i + !len
    done;
    len := !len * 2
  done;
  if inverse then begin
    let inv = 1.0 /. float_of_int n in
    for k = 0 to (2 * n) - 1 do
      a.(k) <- a.(k) *. inv
    done
  end

(** Out-of-place convenience: returns a fresh transformed copy. *)
let dft ?(inverse = false) a =
  let b = Array.copy a in
  transform ~inverse b;
  b

(* --- 2D --- *)

(** Naive complex matrix transpose (strided reads — the slow RAJA-port
    shape from Sec 4.11). *)
let transpose_naive ~n src dst =
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      dst.(2 * ((i * n) + j)) <- src.(2 * ((j * n) + i));
      dst.((2 * ((i * n) + j)) + 1) <- src.((2 * ((j * n) + i)) + 1)
    done
  done

(** Tiled transpose (the hand-CUDA rewrite that won): [tile] x [tile]
    blocks keep both access streams cache/shared-memory resident. *)
let transpose_tiled ?(tile = 16) ~n src dst =
  let bt = (n + tile - 1) / tile in
  for bj = 0 to bt - 1 do
    for bi = 0 to bt - 1 do
      let ilo = bi * tile and jlo = bj * tile in
      for j = jlo to min (jlo + tile - 1) (n - 1) do
        for i = ilo to min (ilo + tile - 1) (n - 1) do
          dst.(2 * ((i * n) + j)) <- src.(2 * ((j * n) + i));
          dst.((2 * ((i * n) + j)) + 1) <- src.((2 * ((j * n) + i)) + 1)
        done
      done
    done
  done

(** 2D FFT of an n x n complex field (row-major, interleaved), using
    row FFTs + transpose + row FFTs + transpose. *)
let transform_2d ?(inverse = false) ?(tiled = true) ~n a =
  assert (Array.length a = 2 * n * n);
  let row = Array.make (2 * n) 0.0 in
  let do_rows b =
    for j = 0 to n - 1 do
      Array.blit b (2 * n * j) row 0 (2 * n);
      transform ~inverse row;
      Array.blit row 0 b (2 * n * j) (2 * n)
    done
  in
  let scratch = Array.make (2 * n * n) 0.0 in
  let transpose src dst =
    if tiled then transpose_tiled ~n src dst else transpose_naive ~n src dst
  in
  do_rows a;
  transpose a scratch;
  do_rows scratch;
  transpose scratch a

(** Work volume of one n-point 1D FFT (5 n log2 n flops, classic count). *)
let fft_work n =
  let fn = float_of_int n in
  let lg = Float.log2 fn in
  Hwsim.Kernel.make ~name:"fft" ~flops:(5.0 *. fn *. lg) ~bytes:(16.0 *. fn *. lg) ()

(** Transpose work: same bytes either way, but the naive version achieves a
    fraction of bandwidth (strided writes), the tiled one streams. *)
let transpose_time ~n ~(device : Hwsim.Device.t) variant =
  let bytes = 2.0 *. 16.0 *. float_of_int (n * n) in
  let bw_frac = match variant with `Naive -> 0.12 | `Tiled -> 0.75 in
  device.Hwsim.Device.launch_overhead_s
  +. (bytes /. (device.Hwsim.Device.mem_bw_gbs *. 1e9 *. bw_frac))
