lib/fftlib/fft.mli: Hwsim
