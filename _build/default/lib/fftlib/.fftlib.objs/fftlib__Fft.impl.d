lib/fftlib/fft.ml: Array Float Hwsim
