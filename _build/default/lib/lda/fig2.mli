(** Fig 2 harness: default vs optimized SparkPlug stack on the
    Wikipedia-scale LDA workload (32 nodes of the final system). The
    algorithm itself runs for real at small scale in {!Vem}; here one
    paper-scale iteration's phase costs are charged through the cluster
    cost model whose components are individually unit-tested. *)

type workload = {
  tokens : float;
  distinct_pairs : float;  (** distinct (doc, word) pairs: shuffle payload *)
  vocab : float;
  k : int;
}

val wikipedia : workload
(** ~3B tokens, 54M-word dictionary. *)

val charge_iteration : Sparkle.Cluster.t -> workload -> unit

val run : ?iters:int -> ?nodes:int -> optimized:bool -> workload -> Sparkle.Cluster.t
(** Run charged iterations under a stack configuration; read the
    returned cluster's clock for the breakdown. *)
