(** Synthetic multi-language corpus generator standing in for the
    Wikipedia corpus (Sec 4.4): LDA-generated documents whose topics have
    Zipf word profiles, with the vocabulary split into disjoint
    per-"language" blocks so the dictionary grows with language count the
    way the 390-language Wikipedia dictionary did. *)

type doc = { words : int array; counts : int array }

type t = {
  docs : doc array;
  vocab : int;
  k_true : int;
  topic_word : float array array;  (** ground-truth topics, rows sum to 1 *)
}

val doc_length : doc -> int

val generate :
  ?ndocs:int -> ?languages:int -> ?vocab_per_lang:int -> ?topics_per_lang:int ->
  ?doc_len:int -> rng:Icoe_util.Rng.t -> unit -> t

val tokens : t -> int
