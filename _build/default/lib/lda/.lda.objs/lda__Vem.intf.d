lib/lda/vem.mli: Corpus Icoe_util Sparkle
