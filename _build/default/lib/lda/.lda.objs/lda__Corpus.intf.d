lib/lda/corpus.mli: Icoe_util
