lib/lda/fig2.mli: Sparkle
