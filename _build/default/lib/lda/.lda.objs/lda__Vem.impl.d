lib/lda/vem.ml: Array Corpus Icoe_util Sparkle
