lib/lda/corpus.ml: Array Hashtbl Icoe_util List Option
