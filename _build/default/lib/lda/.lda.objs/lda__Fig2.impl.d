lib/lda/fig2.ml: Sparkle
