(** Fig 2 harness: default vs optimized SparkPlug stack on the
    Wikipedia-scale LDA workload (the 390-language, 54M-word dictionary
    run of Sec 4.4, on 32 nodes of the final system).

    The algorithm is the same variational EM as [Vem] (which is run for
    real, at small scale, in the tests and examples); here the per-phase
    costs of one paper-scale iteration are charged through the cluster
    cost model, whose components (JVM drag, serialization rates, adaptive
    shuffle, tree aggregate) are each independently unit-tested. *)

type workload = {
  tokens : float;  (** corpus token count *)
  distinct_pairs : float;  (** distinct (doc, word) pairs, shuffle payload *)
  vocab : float;
  k : int;
}

(** Wikipedia-scale numbers: ~3B tokens, 54M-word dictionary. *)
let wikipedia = { tokens = 3.0e9; distinct_pairs = 2.1e9; vocab = 54.0e6; k = 16 }

(** Charge one EM iteration of [w] on [cluster]. *)
let charge_iteration (cluster : Sparkle.Cluster.t) w =
  let k = float_of_int w.k in
  let lambda_bytes = w.vocab *. k *. 8.0 in
  let nodes = float_of_int cluster.Sparkle.Cluster.config.Sparkle.Cluster.nodes in
  (* broadcast a per-node slice of the model *)
  Sparkle.Cluster.charge_broadcast cluster ~bytes:(lambda_bytes /. nodes);
  (* E-step compute: ~160 flops per token per topic *)
  Sparkle.Cluster.charge_compute cluster ~flops:(w.tokens *. k *. 160.0);
  (* shuffle the sufficient statistics by word *)
  Sparkle.Cluster.charge_shuffle cluster ~bytes:(w.distinct_pairs *. k *. 8.0);
  (* all-to-one combine of each node's model slice *)
  Sparkle.Cluster.charge_aggregate cluster ~bytes_per_node:(lambda_bytes /. nodes)

(** Run [iters] charged iterations under a stack configuration; returns
    the cluster (read the clock for the breakdown). *)
let run ?(iters = 5) ?(nodes = 32) ~optimized w =
  let cfg =
    if optimized then Sparkle.Cluster.optimized_config ~nodes ()
    else Sparkle.Cluster.default_config ~nodes ()
  in
  let cluster = Sparkle.Cluster.create cfg in
  for _ = 1 to iters do
    charge_iteration cluster w
  done;
  cluster
