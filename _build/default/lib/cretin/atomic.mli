(** Atomic models for the non-LTE kinetics package: levels (energy,
    statistical weight) and the transitions connecting them. The three
    transition-rate types mirror the three Cretin mini-apps, each with a
    distinct computational profile. *)

type level = { energy : float;  (** above ground, eV *) weight : float }

type transition =
  | Collisional of { upper : int; lower : int; c0 : float }
      (** deexcitation rate coefficient; excitation follows from detailed
          balance *)
  | Radiative of { upper : int; lower : int; a : float }
  | Photo of { upper : int; lower : int; strength : float }
      (** photoexcitation, evaluated by a frequency-quadrature loop *)

type t = { name : string; levels : level array; transitions : transition list }

val n_levels : t -> int

val ladder : ?name:string -> ?e0:float -> ?c0:float -> ?a0:float -> int -> t
(** Hydrogen-like ladder with the given number of levels (>= 2):
    collisional coupling between neighbours, radiative decay to ground.
    Scales from toy to "large atomic model" by the level count. *)

val ladder_with_photo : ?photo_strength:float -> int -> t

val boltzmann : t -> te:float -> float array
(** LTE populations at electron temperature [te] (eV), normalized. *)

val zone_bytes : t -> float
(** Memory footprint of processing one zone (rate matrix + workspaces) —
    the driver of the Sec 4.3 threading/memory trade-off. *)
