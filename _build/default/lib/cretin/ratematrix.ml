(** Transition-rate evaluation and rate-matrix assembly/solution.

    The main computation of Cretin: "calculates transition rates between
    pairs of states, forms a rate matrix from them, and inverts that matrix
    to update the populations" (Sec 4.3). Steady state solves M n = 0 with
    sum(n) = 1; the direct path is the cuSOLVER analog (dense LU), the
    iterative path is the hand-built batched cuSPARSE analog (GMRES with
    Jacobi preconditioning) the team wrote because AMGX could not batch. *)

type conditions = {
  te : float;  (** electron temperature, eV *)
  ne : float;  (** electron density, cm^-3 *)
  radiation : float;  (** mean radiation field scale for photo rates *)
}

(* per-pair rates for each transition type; returns (rate upper->lower,
   rate lower->upper) *)
let pair_rates (model : Atomic.t) cond = function
  | Atomic.Collisional { upper; lower; c0 } ->
      let lu = model.Atomic.levels.(upper) and ll = model.Atomic.levels.(lower) in
      let de = lu.Atomic.energy -. ll.Atomic.energy in
      (* deexcitation ~ ne c0 / sqrt(Te); excitation from detailed balance *)
      let down = cond.ne *. c0 /. sqrt cond.te in
      let up =
        down *. (lu.Atomic.weight /. ll.Atomic.weight) *. exp (-.de /. cond.te)
      in
      (down, up)
  | Atomic.Radiative { a; _ } -> (a, 0.0)
  | Atomic.Photo { upper; lower; strength } ->
      (* quadrature over a Planck-ish line profile: the deliberately heavy
         loop of the photo mini-app *)
      let lu = model.Atomic.levels.(upper) and ll = model.Atomic.levels.(lower) in
      let de = max 0.1 (lu.Atomic.energy -. ll.Atomic.energy) in
      let nq = 32 in
      let acc = ref 0.0 in
      for q = 0 to nq - 1 do
        let x = (float_of_int q +. 0.5) /. float_of_int nq *. 4.0 in
        (* line profile x exponential radiation spectrum *)
        let profile = exp (-.((x -. 2.0) ** 2.0)) in
        let spectrum = cond.radiation /. (exp (de *. x /. (2.0 *. cond.te)) -. 1.0 +. 1e-9) in
        acc := !acc +. (profile *. spectrum)
      done;
      let up = !acc *. strength /. float_of_int nq in
      (0.0, up)

(** Dense rate matrix M: dn/dt = M n. Column sums are zero by
    construction (population conservation). *)
let assemble (model : Atomic.t) cond =
  let n = Atomic.n_levels model in
  let m = Linalg.Dense.create n n in
  List.iter
    (fun tr ->
      let upper, lower =
        match tr with
        | Atomic.Collisional { upper; lower; _ }
        | Atomic.Radiative { upper; lower; _ }
        | Atomic.Photo { upper; lower; _ } -> (upper, lower)
      in
      let down, up = pair_rates model cond tr in
      (* down: upper -> lower *)
      Linalg.Dense.update m lower upper (fun v -> v +. down);
      Linalg.Dense.update m upper upper (fun v -> v -. down);
      (* up: lower -> upper *)
      Linalg.Dense.update m upper lower (fun v -> v +. up);
      Linalg.Dense.update m lower lower (fun v -> v -. up))
    model.Atomic.transitions;
  m

(** Steady-state populations: solve M n = 0, sum n = 1, by replacing the
    last row with the normalization (direct LU — the cuSOLVER path). *)
let solve_direct (model : Atomic.t) cond =
  let n = Atomic.n_levels model in
  let m = assemble model cond in
  for j = 0 to n - 1 do
    Linalg.Dense.set m (n - 1) j 1.0
  done;
  let b = Array.make n 0.0 in
  b.(n - 1) <- 1.0;
  Linalg.Dense.solve m b

(** Same system via preconditioned GMRES on the CSR form (the batched
    iterative path built on the cuSPARSE analog). *)
let solve_iterative ?(tol = 1e-12) (model : Atomic.t) cond =
  let n = Atomic.n_levels model in
  let m = assemble model cond in
  for j = 0 to n - 1 do
    Linalg.Dense.set m (n - 1) j 1.0
  done;
  (* rate rows carry ~1e12 entries against the normalization row's 1s:
     equilibrate rows so the Krylov solve sees an O(1) system *)
  let b = Array.make n 0.0 in
  b.(n - 1) <- 1.0;
  for i = 0 to n - 1 do
    let mx = ref 0.0 in
    for j = 0 to n - 1 do
      mx := max !mx (Float.abs (Linalg.Dense.get m i j))
    done;
    if !mx > 0.0 then begin
      for j = 0 to n - 1 do
        Linalg.Dense.set m i j (Linalg.Dense.get m i j /. !mx)
      done;
      b.(i) <- b.(i) /. !mx
    end
  done;
  let a = Linalg.Csr.of_dense m in
  let d = Linalg.Csr.diag a in
  let r =
    Linalg.Krylov.gmres ~tol ~max_iter:(20 * n) ~restart:(min n 50)
      ~op:(Linalg.Csr.spmv a)
      ~precond:(fun v -> Array.mapi (fun i vi -> vi /. (if d.(i) = 0.0 then 1.0 else d.(i))) v)
      b (Array.make n 0.0)
  in
  (r.Linalg.Krylov.x, r.Linalg.Krylov.converged)

(** Time-dependent population advance dn/dt = M n over [dt] with backward
    Euler (used when zones are driven away from steady state). *)
let advance (model : Atomic.t) cond ~dt n0 =
  let n = Atomic.n_levels model in
  assert (Array.length n0 = n);
  let m = assemble model cond in
  (* (I - dt M) n1 = n0 *)
  let a =
    Linalg.Dense.init n n (fun i j ->
        (if i = j then 1.0 else 0.0) -. (dt *. Linalg.Dense.get m i j))
  in
  Linalg.Dense.solve a n0
