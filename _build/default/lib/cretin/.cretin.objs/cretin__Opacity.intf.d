lib/cretin/opacity.mli: Atomic
