lib/cretin/ratematrix.mli: Atomic Linalg
