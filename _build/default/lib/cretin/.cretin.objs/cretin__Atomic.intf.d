lib/cretin/atomic.mli:
