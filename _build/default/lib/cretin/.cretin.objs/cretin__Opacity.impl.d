lib/cretin/opacity.ml: Array Atomic Float List
