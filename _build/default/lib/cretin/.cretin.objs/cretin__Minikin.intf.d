lib/cretin/minikin.mli: Atomic Hwsim Ratematrix
