lib/cretin/minikin.ml: Array Atomic Hwsim List Ratematrix
