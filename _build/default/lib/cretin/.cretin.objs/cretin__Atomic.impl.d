lib/cretin/atomic.ml: Array Icoe_util List
