lib/cretin/ratematrix.ml: Array Atomic Float Linalg List
