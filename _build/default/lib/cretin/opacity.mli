(** Frequency-dependent opacities from level populations — what the rate
    solve exists to feed into radiation transport (Sec 4.3). Bound-bound
    absorption with Doppler line profiles, corrected for stimulated
    emission. *)

type line = { lower : int; upper : int; center : float; strength : float }

val lines_of_model : Atomic.t -> line list
(** Radiative transitions as absorption lines. *)

val opacity : Atomic.t -> populations:float array -> te:float -> float -> float
(** Opacity at a photon energy (arbitrary units per unit density). *)

val spectrum :
  ?npts:int -> Atomic.t -> populations:float array -> te:float ->
  (float * float) array
(** (photon energy, opacity) samples spanning the model's lines. *)

val planck_mean :
  Atomic.t -> populations:float array -> te:float -> tr:float -> float
(** Planck-weighted mean opacity at radiation temperature [tr]. *)
