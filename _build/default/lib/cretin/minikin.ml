(** minikin: the Cretin mini-app. Batches of zones, each with its own
    plasma conditions, all solved for steady-state populations.

    The Sec 4.3 performance story lives here:

    - CPU threading is *per zone*: every thread needs a full zone workspace
      (rate matrix + factors), so large atomic models exhaust node memory
      and idle cores — "memory constraints require idling 60% of CPU
      cores" for the largest model;
    - the GPU port threads *within* a zone (over transitions/matrix rows),
      so only one zone's workspace is resident and the whole chip stays
      busy regardless of model size. *)

type zone = { cond : Ratematrix.conditions; mutable populations : float array }

type t = { model : Atomic.t; zones : zone array }

(** Zones along a temperature/density gradient (a 1D hohlraum-wall-like
    profile). *)
let create ?(nzones = 64) ?(te0 = 2.0) ?(te1 = 40.0) ?(ne = 1.0e21) model =
  let zones =
    Array.init nzones (fun z ->
        let f = float_of_int z /. float_of_int (max 1 (nzones - 1)) in
        {
          cond =
            {
              Ratematrix.te = te0 +. (f *. (te1 -. te0));
              ne = ne *. (1.0 +. f);
              radiation = 0.1;
            };
          populations = [||];
        })
  in
  { model; zones }

(** Solve every zone (direct solver); populations are stored per zone. *)
let solve_all ?(iterative = false) t =
  Array.iter
    (fun z ->
      z.populations <-
        (if iterative then fst (Ratematrix.solve_iterative t.model z.cond)
         else Ratematrix.solve_direct t.model z.cond))
    t.zones

(** Mean excitation (population-weighted mean level index) per zone —
    a physics observable that must increase with temperature. *)
let mean_excitation z =
  let acc = ref 0.0 in
  Array.iteri (fun k p -> acc := !acc +. (float_of_int k *. p)) z.populations;
  !acc

(* --- the Sec 4.3 performance model --- *)

(** Zone-processing work: rate evaluation ~ exp-heavy per transition, plus
    an O(n^3) dense solve. *)
let zone_work (model : Atomic.t) =
  let n = float_of_int (Atomic.n_levels model) in
  let ntr = float_of_int (List.length model.Atomic.transitions) in
  let rate_flops = ntr *. 120.0 in
  let solve_flops = 2.0 /. 3.0 *. (n ** 3.0) in
  Hwsim.Kernel.make ~name:"zone" ~flops:(rate_flops +. solve_flops)
    ~bytes:(Atomic.zone_bytes model) ()

(** CPU node throughput, zones/second: threads are limited by both core
    count and per-zone workspace memory. Returns (zones_per_s,
    usable_cores, total_cores). *)
let cpu_node_rate ?(node = Hwsim.Node.witherspoon) (model : Atomic.t) =
  let cpu = node.Hwsim.Node.cpu in
  let cores = node.Hwsim.Node.cpu_sockets * cpu.Hwsim.Device.lanes in
  let mem_bytes = float_of_int node.Hwsim.Node.cpu_sockets *. cpu.Hwsim.Device.mem_gb *. 1e9 in
  (* leave half of memory to the host application (HYDRA) *)
  let fit = int_of_float (mem_bytes /. 2.0 /. Atomic.zone_bytes model) in
  let usable = max 1 (min cores fit) in
  let eff = Hwsim.Roofline.eff ~compute:0.25 ~bandwidth:0.6 () in
  (* one zone runs on one core *)
  let t_zone = Hwsim.Roofline.time ~eff ~lanes_used:1 cpu (zone_work model) in
  (float_of_int usable /. t_zone, usable, cores)

(** GPU node throughput, zones/second: threads within a zone, one zone's
    workspace resident at a time; all four GPUs work. The compute
    efficiency is calibrated to the paper's 5.75x node speedup for the
    second-largest model — batched small-LU and rate kernels reach only a
    few percent of DP peak, which is why the ratio is modest. *)
let gpu_node_rate ?(node = Hwsim.Node.witherspoon) (model : Atomic.t) =
  match node.Hwsim.Node.gpu with
  | None -> 0.0
  | Some gpu ->
      let eff = Hwsim.Roofline.eff ~compute:0.052 ~bandwidth:0.25 () in
      let t_zone = Hwsim.Roofline.time ~eff gpu (zone_work model) in
      float_of_int node.Hwsim.Node.gpus /. t_zone

(** The Sec 4.3 comparison for a model size: returns
    (gpu_rate /. cpu_rate, fraction of CPU cores idled by memory). *)
let node_speedup (model : Atomic.t) =
  let cpu_rate, usable, cores = cpu_node_rate model in
  let gpu_rate = gpu_node_rate model in
  (gpu_rate /. cpu_rate, 1.0 -. (float_of_int usable /. float_of_int cores))
