(** Atomic models for the non-LTE kinetics package.

    A model is a set of levels (energy, statistical weight) and the
    transitions connecting them. Three transition-rate types mirror the
    three Cretin mini-apps, each with a distinct computational profile:

    - [Collisional]: electron-impact excitation/deexcitation, exp-heavy,
      density- and temperature-dependent;
    - [Radiative]: spontaneous decay, a constant A coefficient;
    - [Photo]: photoexcitation by a radiation field, evaluated as a
      frequency-integral (quadrature loop — the heavy one). *)

type level = { energy : float;  (** above ground, eV *) weight : float }

type transition =
  | Collisional of { upper : int; lower : int; c0 : float }
      (** deexcitation rate coefficient; excitation follows from detailed
          balance *)
  | Radiative of { upper : int; lower : int; a : float }
  | Photo of { upper : int; lower : int; strength : float }

type t = { name : string; levels : level array; transitions : transition list }

let n_levels t = Array.length t.levels

(** Hydrogen-like ladder model with [n] levels: energies E_k = E0 (1 - 1/k^2),
    weights 2k^2, collisional + radiative transitions between adjacent
    levels and radiative decay to ground. Scales from toy to "large atomic
    model" by [n]. *)
let ladder ?(name = "ladder") ?(e0 = 13.6) ?(c0 = 1.0e-8) ?(a0 = 1.0e8) n =
  assert (n >= 2);
  let levels =
    Array.init n (fun k ->
        let kk = float_of_int (k + 1) in
        { energy = e0 *. (1.0 -. (1.0 /. (kk *. kk))); weight = 2.0 *. kk *. kk })
  in
  let transitions = ref [] in
  for u = 1 to n - 1 do
    (* adjacent collisional coupling *)
    transitions := Collisional { upper = u; lower = u - 1; c0 } :: !transitions;
    (* radiative decay to ground, weaker from higher levels *)
    transitions :=
      Radiative { upper = u; lower = 0; a = a0 /. float_of_int (u * u) }
      :: !transitions
  done;
  { name; levels; transitions = !transitions }

(** A richer model with photoexcitation, for the photo-rate code path. *)
let ladder_with_photo ?(photo_strength = 1.0e3) n =
  let base = ladder ~name:"ladder+photo" n in
  let photo =
    List.init (n - 1) (fun u ->
        Photo { upper = u + 1; lower = 0; strength = photo_strength })
  in
  { base with transitions = base.transitions @ photo }

(** Boltzmann (LTE) populations at electron temperature [te] (eV),
    normalized to sum 1 — the reference the non-LTE solution deviates
    from. *)
let boltzmann t ~te =
  let w =
    Array.map (fun l -> l.weight *. exp (-.l.energy /. te)) t.levels
  in
  let z = Icoe_util.Stats.sum w in
  Array.map (fun x -> x /. z) w

(** Memory footprint of processing one zone of this model, bytes: the rate
    matrix plus workspaces. This drives the Sec 4.3 threading-memory
    trade-off. *)
let zone_bytes t =
  let n = float_of_int (n_levels t) in
  8.0 *. ((3.0 *. n *. n) +. (8.0 *. n))
