(** Frequency-dependent opacities from level populations.

    "The populations are used to calculate frequency-dependent opacities
    required for a radiation transport calculation" (Sec 4.3). Bound-bound
    absorption with Gaussian (Doppler) line profiles, corrected for
    stimulated emission; this is what the larger atomic models the GPU
    port enables feed into hohlraum radiation transport. *)

type line = {
  lower : int;
  upper : int;
  center : float;  (** line-centre photon energy, eV *)
  strength : float;  (** oscillator-strength-like cross-section scale *)
}

(** Radiative transitions of a model as absorption lines. *)
let lines_of_model (m : Atomic.t) =
  List.filter_map
    (function
      | Atomic.Radiative { upper; lower; a } ->
          let de =
            m.Atomic.levels.(upper).Atomic.energy
            -. m.Atomic.levels.(lower).Atomic.energy
          in
          if de > 0.0 then
            (* cross-section scale ~ A / de^2 (f-value relation, constant
               factors absorbed into the arbitrary units) *)
            Some { lower; upper; center = de; strength = a /. (de *. de) }
          else None
      | Atomic.Collisional _ | Atomic.Photo _ -> None)
    m.Atomic.transitions

(* Doppler width at electron temperature te for line-centre e0 *)
let doppler_width ~te e0 = 1e-2 *. e0 *. sqrt (max te 0.1)

(** Opacity at photon energy [e] (arbitrary units per unit density) for a
    model with level [populations] at temperature [te]. *)
let opacity (m : Atomic.t) ~populations ~te e =
  List.fold_left
    (fun acc l ->
      let w = doppler_width ~te l.center in
      let x = (e -. l.center) /. w in
      if Float.abs x > 8.0 then acc
      else
        let profile = exp (-.(x *. x)) /. (w *. sqrt Float.pi) in
        let n_lo = populations.(l.lower) and n_up = populations.(l.upper) in
        let g_lo = m.Atomic.levels.(l.lower).Atomic.weight in
        let g_up = m.Atomic.levels.(l.upper).Atomic.weight in
        (* stimulated-emission correction: n_lo - (g_lo/g_up) n_up *)
        let eff = n_lo -. (g_lo /. g_up *. n_up) in
        acc +. (l.strength *. max 0.0 eff *. profile))
    0.0 (lines_of_model m)

(** Opacity sampled on [npts] photon energies spanning the model's lines. *)
let spectrum ?(npts = 200) (m : Atomic.t) ~populations ~te =
  let ls = lines_of_model m in
  let emax =
    List.fold_left (fun a l -> max a l.center) 1.0 ls *. 1.2
  in
  Array.init npts (fun k ->
      let e = (float_of_int k +. 0.5) /. float_of_int npts *. emax in
      (e, opacity m ~populations ~te e))

(** Planck-mean opacity: spectrum weighted by a normalized Planck-like
    function at radiation temperature [tr]. *)
let planck_mean (m : Atomic.t) ~populations ~te ~tr =
  let sp = spectrum ~npts:400 m ~populations ~te in
  let weight e =
    let x = e /. tr in
    x *. x *. x /. (exp x -. 1.0 +. 1e-12)
  in
  let num = ref 0.0 and den = ref 0.0 in
  Array.iter
    (fun (e, k) ->
      let w = weight e in
      num := !num +. (k *. w);
      den := !den +. w)
    sp;
  !num /. max !den 1e-300
