(** minikin: the Cretin mini-app — batches of zones along a plasma
    gradient, each solved for steady-state populations, plus the Sec 4.3
    threading/memory performance model: CPU threads need a full per-zone
    workspace each (large models idle cores), the GPU threads within a
    zone and keeps only one workspace resident. *)

type zone = { cond : Ratematrix.conditions; mutable populations : float array }

type t = { model : Atomic.t; zones : zone array }

val create : ?nzones:int -> ?te0:float -> ?te1:float -> ?ne:float -> Atomic.t -> t
(** Zones along a temperature/density gradient. *)

val solve_all : ?iterative:bool -> t -> unit

val mean_excitation : zone -> float
(** Population-weighted mean level index; grows with temperature. *)

val zone_work : Atomic.t -> Hwsim.Kernel.t
(** Rate evaluation + O(n^3) dense solve per zone. *)

val cpu_node_rate : ?node:Hwsim.Node.t -> Atomic.t -> float * int * int
(** (zones/s, usable cores, total cores); usable cores shrink when the
    per-zone workspace exhausts node memory. *)

val gpu_node_rate : ?node:Hwsim.Node.t -> Atomic.t -> float

val node_speedup : Atomic.t -> float * float
(** (GPU/CPU node throughput ratio, fraction of CPU cores idled) — the
    5.75x / 60%-idle numbers of Sec 4.3. *)
