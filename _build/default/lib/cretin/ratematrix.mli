(** Transition-rate evaluation and rate-matrix assembly/solution — the
    main computation of Cretin (Sec 4.3). Steady state solves M n = 0
    with sum(n) = 1; the direct path is the cuSOLVER analog, the
    iterative path the hand-built batched cuSPARSE analog (GMRES with
    Jacobi) the team wrote because AMGX could not batch. *)

type conditions = {
  te : float;  (** electron temperature, eV *)
  ne : float;  (** electron density, cm^-3 *)
  radiation : float;  (** radiation-field scale for photo rates *)
}

val pair_rates : Atomic.t -> conditions -> Atomic.transition -> float * float
(** (rate upper->lower, rate lower->upper); collisional excitation
    follows from detailed balance. *)

val assemble : Atomic.t -> conditions -> Linalg.Dense.t
(** Dense rate matrix M with dn/dt = M n; column sums are zero
    (population conservation) by construction. *)

val solve_direct : Atomic.t -> conditions -> float array
(** Steady-state populations via LU with the normalization row. *)

val solve_iterative : ?tol:float -> Atomic.t -> conditions -> float array * bool
(** Same system by row-equilibrated, Jacobi-preconditioned GMRES:
    (populations, converged). *)

val advance : Atomic.t -> conditions -> dt:float -> float array -> float array
(** Backward-Euler advance of dn/dt = M n over one step. *)
