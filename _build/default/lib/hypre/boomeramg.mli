(** BoomerAMG: unstructured algebraic multigrid.

    Setup (CPU, per the paper): strength -> PMIS coarsening -> direct
    interpolation -> Galerkin coarse operator, recursively. Solve
    (GPU-portable): V-cycles whose fine-level work is smoother sweeps and
    spmv restrict/prolong — all matvec-shaped. *)

type level = {
  a : Linalg.Csr.t;
  p : Linalg.Csr.t option;  (** interpolation from the next-coarser level *)
  r : Linalg.Csr.t option;  (** restriction = P^T *)
}

type t = {
  levels : level array;  (** levels.(0) is the fine grid *)
  coarse_lu : Linalg.Dense.lu;
  smoother : Smoother.kind;
  nu_pre : int;
  nu_post : int;
}

type setup_params = {
  theta : float;
  max_levels : int;
  coarse_size : int;
  smoother : Smoother.kind;
  nu_pre : int;
  nu_post : int;
  seed : int;
}

val default_params : setup_params

val setup : ?params:setup_params -> Linalg.Csr.t -> t
(** Build the hierarchy (the CPU-side setup phase). *)

val num_levels : t -> int

val operator_complexity : t -> float
(** Total nnz across levels over fine-grid nnz (a standard AMG health
    metric, ~1.3-2.5 for good hierarchies). *)

val v_cycle : t -> float array -> float array -> unit
(** One V-cycle for A x = b, updating x in place. *)

val solve : ?tol:float -> ?max_cycles:int -> t -> float array -> float array
  -> float array * int * float
(** Iterate V-cycles to tolerance: (solution, cycles, relative residual). *)

val precond : t -> float array -> float array
(** One V-cycle from a zero guess — the AMG-as-preconditioner hook. *)

val pcg_solve : ?tol:float -> ?max_iter:int -> t -> float array -> float array
  -> Linalg.Krylov.result
(** PCG with this AMG as preconditioner — the hypre Krylov + AMG stack. *)

val v_cycle_work : t -> Hwsim.Kernel.t
(** Flop/byte/launch volume of one V-cycle for device pricing. *)
