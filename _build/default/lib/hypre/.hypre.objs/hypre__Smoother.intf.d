lib/hypre/smoother.mli: Linalg
