lib/hypre/pfmg.mli: Prog
