lib/hypre/boxloop.mli: Prog
