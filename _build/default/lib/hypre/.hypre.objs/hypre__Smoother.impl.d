lib/hypre/smoother.ml: Array Float Fmt Linalg
