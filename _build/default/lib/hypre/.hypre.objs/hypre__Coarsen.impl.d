lib/hypre/coarsen.ml: Array Icoe_util Linalg List
