lib/hypre/boxloop.ml: Array Float Prog
