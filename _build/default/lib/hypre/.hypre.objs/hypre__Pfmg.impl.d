lib/hypre/pfmg.ml: Array Boxloop Float List
