lib/hypre/boomeramg.ml: Array Coarsen Hwsim Icoe_util Linalg List Option Smoother
