lib/hypre/coarsen.mli: Icoe_util Linalg
