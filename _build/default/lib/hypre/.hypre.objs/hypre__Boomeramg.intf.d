lib/hypre/boomeramg.mli: Hwsim Linalg Smoother
