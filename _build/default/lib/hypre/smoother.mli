(** Pointwise smoothers for the AMG hierarchy.

    The GPU-portable smoothers are the ones expressible as matvecs plus
    diagonal scalings — why the paper's BoomerAMG solve-phase port leaned
    on cuSPARSE spmv. Gauss-Seidel is the sequential CPU reference. *)

type kind =
  | Jacobi of float  (** weighted Jacobi with the given damping *)
  | L1_jacobi  (** rows scaled by their l1 norm: unconditionally stable *)
  | Gauss_seidel

val name : kind -> string

val sweep : kind -> Linalg.Csr.t -> float array -> float array -> unit
(** [sweep kind a b x]: one in-place sweep of x <- x + M^-1 (b - A x). *)

val gpu_capable : kind -> bool
(** Whether the smoother has spmv-level parallelism (and therefore runs
    on the accelerator in the solve-phase port). *)
