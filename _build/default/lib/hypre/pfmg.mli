(** PFMG: geometric multigrid for the structured path, entirely through
    the retargetable BoxLoops. Solves the 5-point Poisson problem with
    full coarsening, damped Jacobi smoothing, bilinear prolongation and
    full-weighting restriction. Grid sides must be 2^k - 1. *)

type level = {
  n : int;  (** interior points per side *)
  u : float array;  (** (n+2)^2 with ghost walls *)
  b : float array;
  r : float array;
}

type t = { levels : level array }

val idx : level -> int -> int -> int
(** Flat index into a level's ghosted arrays. *)

val create : int -> t
(** [create n] builds the hierarchy for an (n x n) interior grid; [n]
    must be one less than a power of two. *)

val finest : t -> level

val smooth : Prog.Exec.ctx -> ?w:float -> level -> unit
val residual : Prog.Exec.ctx -> level -> unit
val v_cycle : ?nu1:int -> ?nu2:int -> Prog.Exec.ctx -> t -> unit
val residual_norm : Prog.Exec.ctx -> t -> float

val solve : ?tol:float -> ?max_cycles:int -> Prog.Exec.ctx -> t -> int * float
(** Iterate V-cycles to relative tolerance: (cycles, relative norm).
    Converges in O(10) cycles independent of grid size. *)
