(** Structured-solver BoxLoops.

    hypre's structured solvers are "abstracted with macros called BoxLoops
    ... completely restructured to allow ports of CUDA, OpenMP 4.5, RAJA and
    Kokkos into the isolated BoxLoops". Here a box loop is a function that
    sweeps an index box under a pluggable execution context; the structured
    PFMG-style solver below is written entirely in terms of it, so swapping
    the backend is a one-argument change. *)

type box = { ilo : int; ihi : int; jlo : int; jhi : int }

let box_size b = (b.ihi - b.ilo + 1) * (b.jhi - b.jlo + 1)

(** Sweep [f i j] over the box under execution context [ctx]. The
    per-element work descriptor makes the backend chargeable. *)
let boxloop2 (ctx : Prog.Exec.ctx) ?(phase = "boxloop") ~flops_per ~bytes_per b f =
  let ni = b.ihi - b.ilo + 1 in
  let nj = b.jhi - b.jlo + 1 in
  Prog.Exec.forall ctx ~phase ~n:(ni * nj) ~flops_per ~bytes_per (fun k ->
      let i = b.ilo + (k mod ni) in
      let j = b.jlo + (k / ni) in
      f i j)

(** 5-point structured Poisson smoother (weighted Jacobi) on an
    (nx x ny) interior grid with Dirichlet walls, all through boxloops. *)
module Struct_solver = struct
  type t = {
    nx : int;
    ny : int;
    u : float array;
    b : float array;
    scratch : float array;
  }

  let create nx ny =
    {
      nx;
      ny;
      u = Array.make (nx * ny) 0.0;
      b = Array.make (nx * ny) 0.0;
      scratch = Array.make (nx * ny) 0.0;
    }

  let idx t i j = i + (t.nx * j)

  let interior t = { ilo = 1; ihi = t.nx - 2; jlo = 1; jhi = t.ny - 2 }

  (** One weighted-Jacobi sweep; returns nothing, updates [t.u]. *)
  let jacobi_sweep ctx ?(w = 0.8) t =
    let { u; b; scratch; _ } = t in
    boxloop2 ctx ~phase:"struct-smooth" ~flops_per:8.0 ~bytes_per:48.0
      (interior t) (fun i j ->
        let k = idx t i j in
        let nb = u.(k - 1) +. u.(k + 1) +. u.(k - t.nx) +. u.(k + t.nx) in
        scratch.(k) <- u.(k) +. (w *. (((b.(k) +. nb) /. 4.0) -. u.(k))));
    boxloop2 ctx ~phase:"struct-copy" ~flops_per:0.0 ~bytes_per:16.0
      (interior t) (fun i j ->
        let k = idx t i j in
        u.(k) <- scratch.(k))

  (** Residual max-norm over the interior. *)
  let residual_norm ctx t =
    let { u; b; _ } = t in
    let box = interior t in
    Prog.Exec.reduce ctx ~phase:"struct-residual"
      ~n:(box_size box) ~flops_per:7.0 ~bytes_per:48.0 ~init:0.0 ~combine:max
      (fun k ->
        let ni = box.ihi - box.ilo + 1 in
        let i = box.ilo + (k mod ni) in
        let j = box.jlo + (k / ni) in
        let kk = idx t i j in
        let nb = u.(kk - 1) +. u.(kk + 1) +. u.(kk - t.nx) +. u.(kk + t.nx) in
        Float.abs (b.(kk) +. nb -. (4.0 *. u.(kk))))

  (** Iterate to tolerance; returns (sweeps, final residual). *)
  let solve ?(tol = 1e-8) ?(max_sweeps = 5000) ctx t =
    let r0 = max (residual_norm ctx t) 1e-300 in
    let sweeps = ref 0 in
    let r = ref r0 in
    while !r /. r0 > tol && !sweeps < max_sweeps do
      jacobi_sweep ctx t;
      incr sweeps;
      (* residual check every 10 sweeps keeps reduction traffic modest *)
      if !sweeps mod 10 = 0 then r := residual_norm ctx t
    done;
    r := residual_norm ctx t;
    (!sweeps, !r /. r0)
end
