(** Structured-solver BoxLoops.

    hypre's structured solvers are "abstracted with macros called BoxLoops
    ... completely restructured to allow ports of CUDA, OpenMP 4.5, RAJA
    and Kokkos into the isolated BoxLoops". A box loop sweeps an index box
    under a pluggable execution context, so swapping the backend is a
    one-argument change. *)

type box = { ilo : int; ihi : int; jlo : int; jhi : int }

val box_size : box -> int

val boxloop2 :
  Prog.Exec.ctx ->
  ?phase:string ->
  flops_per:float ->
  bytes_per:float ->
  box ->
  (int -> int -> unit) ->
  unit
(** Sweep [f i j] over the box, charging the context. *)

(** A 5-point structured Poisson smoother written entirely through
    boxloops (the retargetable structured-solver shape). *)
module Struct_solver : sig
  type t = {
    nx : int;
    ny : int;
    u : float array;
    b : float array;
    scratch : float array;
  }

  val create : int -> int -> t
  val idx : t -> int -> int -> int
  val interior : t -> box
  val jacobi_sweep : Prog.Exec.ctx -> ?w:float -> t -> unit
  val residual_norm : Prog.Exec.ctx -> t -> float

  val solve : ?tol:float -> ?max_sweeps:int -> Prog.Exec.ctx -> t -> int * float
  (** Iterate to relative tolerance: (sweeps, final relative residual). *)
end
