(** Strength of connection and PMIS coarse-grid selection — the
    (CPU-resident) setup-phase machinery the paper explicitly kept on the
    host. *)

type cf = Coarse | Fine

val strength : ?theta:float -> Linalg.Csr.t -> Linalg.Csr.t
(** Strength matrix: S_ij = 1 iff -a_ij >= theta * max_k(-a_ik), diagonal
    excluded. Default theta 0.25. *)

val pmis : rng:Icoe_util.Rng.t -> Linalg.Csr.t -> cf array
(** PMIS coarsening on a strength graph; deterministic given [rng]. Every
    fine point ends with at least one strong coarse neighbour. *)

val direct_interpolation :
  Linalg.Csr.t -> Linalg.Csr.t -> cf array -> Linalg.Csr.t * int array
(** Classical direct interpolation: [(p, cmap)] where [p] maps coarse
    coefficients to the fine grid and [cmap.(i)] is the coarse index of
    fine point [i] (or -1). Coarse points are injected. *)
