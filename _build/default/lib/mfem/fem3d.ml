(** 3D tensor-product FEM: the dimensionality of the paper's actual
    benchmark problems. Hexahedral elements on a Cartesian mesh, order-p
    continuous dofs on the GLL lattice, and the sum-factorized partial
    assembly of the diffusion operator — O(p^4) work per element against
    the O(p^6) nonzeros a 3D assembled matrix would carry, which is where
    partial assembly's advantage explodes relative to 2D. *)

module Mesh3 = struct
  type t = {
    nx : int;
    ny : int;
    nz : int;
    p : int;
    lx : float;
    ly : float;
    lz : float;
    ndx : int;
    ndy : int;
    ndz : int;
  }

  let create ?(lx = 1.0) ?(ly = 1.0) ?(lz = 1.0) ~nx ~ny ~nz ~p () =
    assert (nx >= 1 && ny >= 1 && nz >= 1 && p >= 1);
    {
      nx; ny; nz; p; lx; ly; lz;
      ndx = (nx * p) + 1;
      ndy = (ny * p) + 1;
      ndz = (nz * p) + 1;
    }

  let num_elements t = t.nx * t.ny * t.nz
  let num_dofs t = t.ndx * t.ndy * t.ndz
  let hx t = t.lx /. float_of_int t.nx
  let hy t = t.ly /. float_of_int t.ny
  let hz t = t.lz /. float_of_int t.nz

  let global_dof t ~ex ~ey ~ez ~i ~j ~k =
    let gx = (ex * t.p) + i and gy = (ey * t.p) + j and gz = (ez * t.p) + k in
    gx + (t.ndx * (gy + (t.ndy * gz)))

  let dof_coords t nodes g =
    let gx = g mod t.ndx in
    let gy = g / t.ndx mod t.ndy in
    let gz = g / (t.ndx * t.ndy) in
    let coord n h nelem =
      let e = min (n / t.p) (nelem - 1) in
      let i = n - (e * t.p) in
      (float_of_int e *. h) +. ((nodes.(i) +. 1.0) /. 2.0 *. h)
    in
    (coord gx (hx t) t.nx, coord gy (hy t) t.ny, coord gz (hz t) t.nz)

  let is_boundary t g =
    let gx = g mod t.ndx in
    let gy = g / t.ndx mod t.ndy in
    let gz = g / (t.ndx * t.ndy) in
    gx = 0 || gx = t.ndx - 1 || gy = 0 || gy = t.ndy - 1 || gz = 0
    || gz = t.ndz - 1

  let gather t u ~ex ~ey ~ez local =
    let p1 = t.p + 1 in
    for k = 0 to t.p do
      for j = 0 to t.p do
        for i = 0 to t.p do
          local.(i + (p1 * (j + (p1 * k)))) <-
            u.(global_dof t ~ex ~ey ~ez ~i ~j ~k)
        done
      done
    done

  let scatter_add t local ~ex ~ey ~ez y =
    let p1 = t.p + 1 in
    for k = 0 to t.p do
      for j = 0 to t.p do
        for i = 0 to t.p do
          let g = global_dof t ~ex ~ey ~ez ~i ~j ~k in
          y.(g) <- y.(g) +. local.(i + (p1 * (j + (p1 * k))))
        done
      done
    done
end

(** Matrix-free 3D diffusion operator with sum factorization. *)
module Pa3 = struct
  type t = {
    mesh : Mesh3.t;
    basis : Basis.t;
    (* diagonal geometric factors per element per quadrature point *)
    d : float array array;  (** d.(e).(3*q + c) for component c *)
    u_loc : float array;
    y_loc : float array;
    t1 : float array;
    t2 : float array;
    gq : float array array;  (** 3 x nq^3 gradient components *)
  }

  let setup ?(kappa = fun ~x:_ ~y:_ ~z:_ -> 1.0) mesh (basis : Basis.t) =
    let nq = Basis.nq basis in
    let p1 = basis.Basis.p + 1 in
    let ne = Mesh3.num_elements mesh in
    let hx = Mesh3.hx mesh and hy = Mesh3.hy mesh and hz = Mesh3.hz mesh in
    let detj = hx *. hy *. hz /. 8.0 in
    let scale = [| 4.0 /. (hx *. hx); 4.0 /. (hy *. hy); 4.0 /. (hz *. hz) |] in
    let d = Array.make ne [||] in
    for ez = 0 to mesh.Mesh3.nz - 1 do
      for ey = 0 to mesh.Mesh3.ny - 1 do
        for ex = 0 to mesh.Mesh3.nx - 1 do
          let e = ex + (mesh.Mesh3.nx * (ey + (mesh.Mesh3.ny * ez))) in
          let w = Array.make (3 * nq * nq * nq) 0.0 in
          for q3 = 0 to nq - 1 do
            for q2 = 0 to nq - 1 do
              for q1 = 0 to nq - 1 do
                let x =
                  (float_of_int ex +. ((basis.Basis.qpts.(q1) +. 1.0) /. 2.0)) *. hx
                in
                let y =
                  (float_of_int ey +. ((basis.Basis.qpts.(q2) +. 1.0) /. 2.0)) *. hy
                in
                let z =
                  (float_of_int ez +. ((basis.Basis.qpts.(q3) +. 1.0) /. 2.0)) *. hz
                in
                let wq =
                  basis.Basis.qwts.(q1) *. basis.Basis.qwts.(q2)
                  *. basis.Basis.qwts.(q3) *. detj *. kappa ~x ~y ~z
                in
                let q = q1 + (nq * (q2 + (nq * q3))) in
                for c = 0 to 2 do
                  w.((3 * q) + c) <- wq *. scale.(c)
                done
              done
            done
          done;
          d.(e) <- w
        done
      done
    done;
    let nq3 = nq * nq * nq in
    {
      mesh;
      basis;
      d;
      u_loc = Array.make (p1 * p1 * p1) 0.0;
      y_loc = Array.make (p1 * p1 * p1) 0.0;
      t1 = Array.make (nq * p1 * p1) 0.0;
      t2 = Array.make (nq * nq * p1) 0.0;
      gq = Array.init 3 (fun _ -> Array.make nq3 0.0);
    }

  (* forward: out[q1,q2,q3] = sum_{i1,i2,i3} A.(q1,i1) B.(q2,i2) C.(q3,i3)
     src[i1,i2,i3]; src is p1^3 (i fastest), out is nq^3 (q1 fastest) *)
  let contract_forward t a b c src out =
    let p1 = t.basis.Basis.p + 1 in
    let nq = Basis.nq t.basis in
    (* stage 1: t1[q1,i2,i3] *)
    for i3 = 0 to p1 - 1 do
      for i2 = 0 to p1 - 1 do
        for q1 = 0 to nq - 1 do
          let s = ref 0.0 in
          for i1 = 0 to p1 - 1 do
            s := !s +. (a.(q1).(i1) *. src.(i1 + (p1 * (i2 + (p1 * i3)))))
          done;
          t.t1.(q1 + (nq * (i2 + (p1 * i3)))) <- !s
        done
      done
    done;
    (* stage 2: t2[q1,q2,i3] *)
    for i3 = 0 to p1 - 1 do
      for q2 = 0 to nq - 1 do
        for q1 = 0 to nq - 1 do
          let s = ref 0.0 in
          for i2 = 0 to p1 - 1 do
            s := !s +. (b.(q2).(i2) *. t.t1.(q1 + (nq * (i2 + (p1 * i3)))))
          done;
          t.t2.(q1 + (nq * (q2 + (nq * i3)))) <- !s
        done
      done
    done;
    (* stage 3: out[q1,q2,q3] *)
    for q3 = 0 to nq - 1 do
      for q2 = 0 to nq - 1 do
        for q1 = 0 to nq - 1 do
          let s = ref 0.0 in
          for i3 = 0 to p1 - 1 do
            s := !s +. (c.(q3).(i3) *. t.t2.(q1 + (nq * (q2 + (nq * i3)))))
          done;
          out.(q1 + (nq * (q2 + (nq * q3)))) <- !s
        done
      done
    done

  (* backward (transpose) contraction, accumulating into out (p1^3) *)
  let contract_backward t a b c src out =
    let p1 = t.basis.Basis.p + 1 in
    let nq = Basis.nq t.basis in
    (* stage 1: t2[j1,q2,q3] = sum_q1 a.(q1).(j1) src[q1,q2,q3] *)
    for q3 = 0 to nq - 1 do
      for q2 = 0 to nq - 1 do
        for j1 = 0 to p1 - 1 do
          let s = ref 0.0 in
          for q1 = 0 to nq - 1 do
            s := !s +. (a.(q1).(j1) *. src.(q1 + (nq * (q2 + (nq * q3)))))
          done;
          t.t2.(j1 + (p1 * (q2 + (nq * q3)))) <- !s
        done
      done
    done;
    (* stage 2: t1[j1,j2,q3] *)
    for q3 = 0 to nq - 1 do
      for j2 = 0 to p1 - 1 do
        for j1 = 0 to p1 - 1 do
          let s = ref 0.0 in
          for q2 = 0 to nq - 1 do
            s := !s +. (b.(q2).(j2) *. t.t2.(j1 + (p1 * (q2 + (nq * q3)))))
          done;
          t.t1.(j1 + (p1 * (j2 + (p1 * q3)))) <- !s
        done
      done
    done;
    (* stage 3 accumulate into out[j1,j2,j3] *)
    for j3 = 0 to p1 - 1 do
      for j2 = 0 to p1 - 1 do
        for j1 = 0 to p1 - 1 do
          let s = ref 0.0 in
          for q3 = 0 to nq - 1 do
            s := !s +. (c.(q3).(j3) *. t.t1.(j1 + (p1 * (j2 + (p1 * q3)))))
          done;
          let o = j1 + (p1 * (j2 + (p1 * j3))) in
          out.(o) <- out.(o) +. !s
        done
      done
    done

  (** y <- K u, matrix-free sum factorization in 3D. *)
  let apply t u y =
    let mesh = t.mesh and basis = t.basis in
    let nq = Basis.nq basis in
    let nq3 = nq * nq * nq in
    let bb = basis.Basis.b and gg = basis.Basis.g in
    Array.fill y 0 (Array.length y) 0.0;
    for ez = 0 to mesh.Mesh3.nz - 1 do
      for ey = 0 to mesh.Mesh3.ny - 1 do
        for ex = 0 to mesh.Mesh3.nx - 1 do
          let e = ex + (mesh.Mesh3.nx * (ey + (mesh.Mesh3.ny * ez))) in
          Mesh3.gather mesh u ~ex ~ey ~ez t.u_loc;
          contract_forward t gg bb bb t.u_loc t.gq.(0);
          contract_forward t bb gg bb t.u_loc t.gq.(1);
          contract_forward t bb bb gg t.u_loc t.gq.(2);
          let d = t.d.(e) in
          for q = 0 to nq3 - 1 do
            t.gq.(0).(q) <- t.gq.(0).(q) *. d.(3 * q);
            t.gq.(1).(q) <- t.gq.(1).(q) *. d.((3 * q) + 1);
            t.gq.(2).(q) <- t.gq.(2).(q) *. d.((3 * q) + 2)
          done;
          Array.fill t.y_loc 0 (Array.length t.y_loc) 0.0;
          contract_backward t gg bb bb t.gq.(0) t.y_loc;
          contract_backward t bb gg bb t.gq.(1) t.y_loc;
          contract_backward t bb bb gg t.gq.(2) t.y_loc;
          Mesh3.scatter_add mesh t.y_loc ~ex ~ey ~ez y
        done
      done
    done

  (** Flop/byte volume of one apply (6 contraction triples of
      ~2 nq p^3-ish each, diagonal scaling, gather/scatter). *)
  let work t =
    let p1 = float_of_int (t.basis.Basis.p + 1) in
    let nq = float_of_int (Basis.nq t.basis) in
    let ne = float_of_int (Mesh3.num_elements t.mesh) in
    let pass = 2.0 *. ((nq *. p1 *. p1 *. p1) +. (nq *. nq *. p1 *. p1) +. (nq *. nq *. nq *. p1)) in
    Hwsim.Kernel.make ~name:"pa3-apply"
      ~flops:(ne *. ((6.0 *. pass) +. (6.0 *. nq *. nq *. nq)))
      ~bytes:(ne *. 8.0 *. ((2.0 *. p1 ** 3.0) +. (3.0 *. nq ** 3.0)))
      ()

  let storage_bytes t =
    let nq = Basis.nq t.basis in
    float_of_int (Mesh3.num_elements t.mesh) *. 3.0
    *. float_of_int (nq * nq * nq) *. 8.0

  (** What full assembly would store: ~(2p+1)^3 nonzeros per row. *)
  let fa_storage_bytes t =
    let p = t.mesh.Mesh3.p in
    let row = float_of_int ((2 * p) + 1) ** 3.0 in
    12.0 *. row *. float_of_int (Mesh3.num_dofs t.mesh)
end

(** Diagonal (GLL-collocated) mass for 3D meshes. *)
let mass_diagonal3 ?(rho = fun ~x:_ ~y:_ ~z:_ -> 1.0) (mesh : Mesh3.t)
    (cb : Basis.t) =
  let m = Array.make (Mesh3.num_dofs mesh) 0.0 in
  let hx = Mesh3.hx mesh and hy = Mesh3.hy mesh and hz = Mesh3.hz mesh in
  let detj = hx *. hy *. hz /. 8.0 in
  for ez = 0 to mesh.Mesh3.nz - 1 do
    for ey = 0 to mesh.Mesh3.ny - 1 do
      for ex = 0 to mesh.Mesh3.nx - 1 do
        for k = 0 to cb.Basis.p do
          for j = 0 to cb.Basis.p do
            for i = 0 to cb.Basis.p do
              let g = Mesh3.global_dof mesh ~ex ~ey ~ez ~i ~j ~k in
              let x = (float_of_int ex +. ((cb.Basis.nodes.(i) +. 1.0) /. 2.0)) *. hx in
              let y = (float_of_int ey +. ((cb.Basis.nodes.(j) +. 1.0) /. 2.0)) *. hy in
              let z = (float_of_int ez +. ((cb.Basis.nodes.(k) +. 1.0) /. 2.0)) *. hz in
              m.(g) <-
                m.(g)
                +. (cb.Basis.qwts.(i) *. cb.Basis.qwts.(j) *. cb.Basis.qwts.(k)
                   *. detj *. rho ~x ~y ~z)
            done
          done
        done
      done
    done
  done;
  m
