(** 1D nodal (Lagrange) bases on GLL points, tabulated at quadrature
    points. These [b] / [g] matrices are the only basis data the
    sum-factorized operators touch — the tensor-product structure does the
    rest. *)

type t = {
  p : int;  (** polynomial order *)
  nodes : float array;  (** p+1 GLL nodal points on [-1,1] *)
  qpts : float array;  (** nq quadrature points *)
  qwts : float array;
  b : float array array;  (** b.(q).(i) = phi_i(x_q), nq x (p+1) *)
  g : float array array;  (** g.(q).(i) = phi_i'(x_q) *)
}

(* Lagrange basis i on [nodes] evaluated at x, plus derivative. *)
let lagrange_eval nodes i x =
  let n = Array.length nodes in
  let v = ref 1.0 in
  for j = 0 to n - 1 do
    if j <> i then v := !v *. ((x -. nodes.(j)) /. (nodes.(i) -. nodes.(j)))
  done;
  let dv = ref 0.0 in
  for k = 0 to n - 1 do
    if k <> i then begin
      let term = ref (1.0 /. (nodes.(i) -. nodes.(k))) in
      for j = 0 to n - 1 do
        if j <> i && j <> k then
          term := !term *. ((x -. nodes.(j)) /. (nodes.(i) -. nodes.(j)))
      done;
      dv := !dv +. !term
    end
  done;
  (!v, !dv)

(** Basis of order [p] tabulated at an [nq]-point Gauss rule
    (default nq = p+2, full accuracy for the diffusion bilinear form). *)
let create ?nq p =
  assert (p >= 1);
  let nq = match nq with Some n -> n | None -> p + 2 in
  let nodes, _ = Quadrature.gauss_lobatto (p + 1) in
  let qpts, qwts = Quadrature.gauss_legendre nq in
  let b = Array.make_matrix nq (p + 1) 0.0 in
  let g = Array.make_matrix nq (p + 1) 0.0 in
  for q = 0 to nq - 1 do
    for i = 0 to p do
      let v, dv = lagrange_eval nodes i qpts.(q) in
      b.(q).(i) <- v;
      g.(q).(i) <- dv
    done
  done;
  { p; nodes; qpts; qwts; b; g }

(** Collocation variant: quadrature at the GLL nodes themselves, which
    makes the mass matrix diagonal (spectral-element lumping). *)
let create_collocated p =
  assert (p >= 1);
  let nodes, wts = Quadrature.gauss_lobatto (p + 1) in
  let nq = p + 1 in
  let b = Array.make_matrix nq (p + 1) 0.0 in
  let g = Array.make_matrix nq (p + 1) 0.0 in
  for q = 0 to nq - 1 do
    for i = 0 to p do
      let v, dv = lagrange_eval nodes i nodes.(q) in
      b.(q).(i) <- v;
      g.(q).(i) <- dv
    done
  done;
  { p; nodes; qpts = Array.copy nodes; qwts = wts; b; g }

let nq t = Array.length t.qpts
let ndof t = t.p + 1
