lib/mfem/lor.mli: Basis Diffusion Linalg Mesh
