lib/mfem/quadrature.ml: Array Float
