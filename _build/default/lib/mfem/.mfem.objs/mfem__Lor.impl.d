lib/mfem/lor.ml: Array Basis Diffusion Linalg Mesh
