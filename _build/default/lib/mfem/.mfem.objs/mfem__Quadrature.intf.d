lib/mfem/quadrature.mli:
