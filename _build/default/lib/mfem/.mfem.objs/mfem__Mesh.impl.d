lib/mfem/mesh.ml: Array
