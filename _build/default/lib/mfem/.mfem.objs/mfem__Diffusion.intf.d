lib/mfem/diffusion.mli: Basis Hwsim Linalg Mesh
