lib/mfem/mesh.mli:
