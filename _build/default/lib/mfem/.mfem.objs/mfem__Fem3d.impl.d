lib/mfem/fem3d.ml: Array Basis Hwsim
