lib/mfem/nldiff.mli: Hwsim Prog Sundials
