lib/mfem/basis.mli:
