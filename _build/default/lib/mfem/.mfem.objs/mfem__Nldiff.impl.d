lib/mfem/nldiff.ml: Array Basis Diffusion Float Hwsim Hypre Linalg List Lor Mesh Prog Sundials
