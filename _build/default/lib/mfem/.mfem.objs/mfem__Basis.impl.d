lib/mfem/basis.ml: Array Quadrature
