lib/mfem/diffusion.ml: Array Basis Hwsim Linalg List Mesh
