(** The paper's integrated math-library benchmark (Sec 4.10.4): the
    nonlinear diffusion problem u_t = div((1 + u^2) grad u) discretized
    with high-order partial assembly, integrated with the CVODE-style
    BDF, each Newton system solved by PCG with BoomerAMG on the LOR
    operator. One driver exercising MFEM + hypre + SUNDIALS end to end;
    its event counts are priced into Fig 8 and Table 4. *)

type counters = {
  mutable rhs_applies : int;
  mutable solve_applies : int;
  mutable coeff_updates : int;
  mutable vcycles : int;
  mutable pcg_iters : int;
}

type result = {
  u : float array;
  counters : counters;
  ode_stats : Sundials.Cvode.stats;
  pa_work : Hwsim.Kernel.t;  (** one PA operator application *)
  vcycle_work : Hwsim.Kernel.t;  (** one AMG V-cycle *)
  ndof : int;
  mass_diag : float array;
}

val kappa_of_u : float -> float
val default_u0 : x:float -> y:float -> float

val run :
  ?n:int -> ?p:int -> ?tf:float -> ?rtol:float -> ?atol:float ->
  ?u0:(x:float -> y:float -> float) -> unit -> result
(** Integrate the problem on an (n x n)-element order-p mesh to [tf]. *)

val price :
  ?scale:float -> result -> device:Hwsim.Device.t -> policy:Prog.Policy.t ->
  float * float * float
(** (formulation, preconditioner, solve) seconds — the Fig 8 phases.
    [scale] extrapolates the per-apply work to a problem [scale] times
    larger while keeping the real run's iteration counts (how paper-scale
    sizes are priced from an affordable run). *)
