(** Cartesian 2D quad meshes with tensor-product H1 dof numbering.

    Elements are (nx x ny) squares on [0,lx] x [0,ly]; order-p continuous
    dofs sit on the per-dimension GLL lattice, (nx*p+1) x (ny*p+1) global
    points. Boundary dofs are tracked for Dirichlet elimination. *)

type t = {
  nx : int;
  ny : int;
  p : int;
  lx : float;
  ly : float;
  ndof_x : int;
  ndof_y : int;
}

let create ?(lx = 1.0) ?(ly = 1.0) ~nx ~ny ~p () =
  assert (nx >= 1 && ny >= 1 && p >= 1);
  { nx; ny; p; lx; ly; ndof_x = (nx * p) + 1; ndof_y = (ny * p) + 1 }

let num_elements t = t.nx * t.ny
let num_dofs t = t.ndof_x * t.ndof_y
let hx t = t.lx /. float_of_int t.nx
let hy t = t.ly /. float_of_int t.ny

(** Global dof index of local tensor node (i,j) of element (ex,ey). *)
let global_dof t ~ex ~ey ~i ~j =
  assert (i >= 0 && i <= t.p && j >= 0 && j <= t.p);
  let gx = (ex * t.p) + i and gy = (ey * t.p) + j in
  gx + (t.ndof_x * gy)

(** Physical coordinates of global dof [g], using the per-element GLL
    lattice defined by [nodes] (the basis nodal points on [-1,1]). *)
let dof_coords t nodes g =
  let gx = g mod t.ndof_x and gy = g / t.ndof_x in
  let coord n h nelem =
    let e = min (n / t.p) (nelem - 1) in
    let i = n - (e * t.p) in
    (float_of_int e *. h) +. ((nodes.(i) +. 1.0) /. 2.0 *. h)
  in
  (coord gx (hx t) t.nx, coord gy (hy t) t.ny)

(** Is global dof [g] on the domain boundary? *)
let is_boundary t g =
  let gx = g mod t.ndof_x and gy = g / t.ndof_x in
  gx = 0 || gx = t.ndof_x - 1 || gy = 0 || gy = t.ndof_y - 1

let boundary_dofs t =
  let acc = ref [] in
  for g = num_dofs t - 1 downto 0 do
    if is_boundary t g then acc := g :: !acc
  done;
  !acc

(** Gather element-local dof values (row-major (p+1)^2) from global [u]. *)
let gather t u ~ex ~ey local =
  let p1 = t.p + 1 in
  for j = 0 to t.p do
    for i = 0 to t.p do
      local.((j * p1) + i) <- u.(global_dof t ~ex ~ey ~i ~j)
    done
  done

(** Scatter-add element-local values into global [y]. *)
let scatter_add t local ~ex ~ey y =
  let p1 = t.p + 1 in
  for j = 0 to t.p do
    for i = 0 to t.p do
      y.(global_dof t ~ex ~ey ~i ~j) <- y.(global_dof t ~ex ~ey ~i ~j) +. local.((j * p1) + i)
    done
  done
