(** Cartesian 2D quad meshes with tensor-product H1 dof numbering:
    (nx x ny) elements on [0,lx] x [0,ly]; order-p continuous dofs on the
    per-dimension GLL lattice, (nx*p + 1) x (ny*p + 1) global points. *)

type t = {
  nx : int;
  ny : int;
  p : int;
  lx : float;
  ly : float;
  ndof_x : int;
  ndof_y : int;
}

val create : ?lx:float -> ?ly:float -> nx:int -> ny:int -> p:int -> unit -> t

val num_elements : t -> int
val num_dofs : t -> int
val hx : t -> float
val hy : t -> float

val global_dof : t -> ex:int -> ey:int -> i:int -> j:int -> int
(** Global index of local tensor node (i, j) of element (ex, ey);
    shared-edge dofs coincide across neighbouring elements. *)

val dof_coords : t -> float array -> int -> float * float
(** Physical coordinates of a global dof given the basis nodal points. *)

val is_boundary : t -> int -> bool
val boundary_dofs : t -> int list

val gather : t -> float array -> ex:int -> ey:int -> float array -> unit
(** Element-local dof values (row-major (p+1)^2) from a global vector. *)

val scatter_add : t -> float array -> ex:int -> ey:int -> float array -> unit
