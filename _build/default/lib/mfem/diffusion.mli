(** The diffusion operator in two representations: classical full
    assembly into CSR (the "wrong algorithm for GPUs" the MFEM team
    started from) and matrix-free partial assembly with sum factorization
    (the rewrite). Both compute identical results; they differ in the
    flop/byte/storage profile the hardware model prices — the substance of
    Fig 8 / Table 4. *)

type coefficient = x:float -> y:float -> float

val unit_coefficient : coefficient

val assemble : ?kappa:coefficient -> Mesh.t -> Basis.t -> Linalg.Csr.t
(** Full assembly of the global stiffness matrix (no boundary
    conditions). *)

val eliminate_dirichlet : Linalg.Csr.t -> int list -> Linalg.Csr.t
(** Zero the given rows/columns and put 1 on their diagonal. *)

(** Matrix-free partial assembly. *)
module Pa : sig
  type t = {
    mesh : Mesh.t;
    basis : Basis.t;
    d00 : float array array;  (** per-element quadrature-point factors *)
    d11 : float array array;
    u_loc : float array;
    y_loc : float array;
    tmp : float array;
    gx : float array;
    gy : float array;
  }

  val setup : ?kappa:coefficient -> Mesh.t -> Basis.t -> t
  (** Precompute the geometric factors; storage O(elements x qpoints). *)

  val apply : t -> float array -> float array -> unit
  (** y <- K u by sum-factorized tensor contractions. *)

  val apply_constrained : t -> bdof:bool array -> float array -> float array -> unit
  (** Apply with identity on the constrained (Dirichlet) subspace. *)

  val apply_specialized : t -> float array -> float array -> unit
  (** "JIT"-specialized kernel for p = 2 with unrolled contractions (the
      Sec 4.10.3 compile-time-bounds lesson); identical results, falls
      back to [apply] for other orders. *)

  val update_coefficients : t -> kappa_of_u:(float -> float) -> u:float array -> unit
  (** Rebuild the factors for a solution-dependent coefficient. *)

  val work : t -> Hwsim.Kernel.t
  (** Flop/byte volume of one full-mesh apply. *)

  val storage_bytes : t -> float
end

val fa_work : Linalg.Csr.t -> Hwsim.Kernel.t
val fa_storage_bytes : Linalg.Csr.t -> float

val mass_diagonal : ?rho:coefficient -> Mesh.t -> Basis.t -> float array
(** Diagonal mass matrix from GLL collocation (spectral-element lumping);
    pass a basis from {!Basis.create_collocated}. *)

(** Matrix-free consistent (non-lumped) mass operator, same
    sum-factorized shape with value-only contractions. *)
module Pa_mass : sig
  type t

  val setup : ?rho:coefficient -> Mesh.t -> Basis.t -> t
  val apply : t -> float array -> float array -> unit
end
