(** Gauss-Legendre and Gauss-Lobatto-Legendre rules on [-1, 1]. GLL nodes
    double as the nodal points of the high-order bases. *)

val legendre : int -> float -> float * float
(** [(P_n(x), P_n'(x))] by recurrence. *)

val gauss_legendre : int -> float array * float array
(** n points and weights, exact for polynomials of degree 2n-1. *)

val gauss_lobatto : int -> float array * float array
(** n >= 2 points including the endpoints, exact to degree 2n-3. *)
