(** Low-order-refined (LOR) preconditioning: each order-p element is
    subdivided into p x p bilinear sub-elements with vertices at the GLL
    nodes, giving a sparse p = 1 matrix spectrally equivalent to the
    high-order operator on the *same* dof lattice. BoomerAMG on this
    matrix preconditions the matrix-free operator — the paper's
    nonlinear-diffusion benchmark configuration. *)

val assemble : ?kappa:Diffusion.coefficient -> Mesh.t -> Basis.t -> Linalg.Csr.t
(** The LOR diffusion matrix with Dirichlet boundary eliminated. *)
