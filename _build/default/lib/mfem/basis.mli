(** 1D nodal (Lagrange) bases on GLL points, tabulated at quadrature
    points. The [b]/[g] tables are the only basis data the sum-factorized
    operators touch — the tensor-product structure does the rest. *)

type t = {
  p : int;  (** polynomial order *)
  nodes : float array;  (** p+1 GLL nodal points on [-1, 1] *)
  qpts : float array;
  qwts : float array;
  b : float array array;  (** b.(q).(i) = phi_i(x_q) *)
  g : float array array;  (** g.(q).(i) = phi_i'(x_q) *)
}

val lagrange_eval : float array -> int -> float -> float * float
(** Value and derivative of Lagrange basis [i] on the given nodes. *)

val create : ?nq:int -> int -> t
(** Order-p basis at an nq-point Gauss rule (default p+2, full accuracy
    for the diffusion form). *)

val create_collocated : int -> t
(** Quadrature at the GLL nodes themselves — makes the mass matrix
    diagonal (spectral-element lumping). *)

val nq : t -> int
val ndof : t -> int
