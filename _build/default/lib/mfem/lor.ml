(** Low-order-refined (LOR) preconditioning.

    The paper's nonlinear-diffusion benchmark preconditions the high-order
    operator with BoomerAMG built on "a low-order refined version of the
    finite element operator": each order-p element is subdivided into p x p
    bilinear sub-elements whose vertices are the GLL nodes, giving a sparse
    p=1 matrix that is spectrally equivalent to the high-order operator and
    shares its dof lattice one-to-one. *)

(** Assemble the LOR (p=1 on the GLL sub-grid) diffusion matrix for
    [mesh]/[basis], with Dirichlet boundary eliminated. The dof numbering
    matches the high-order space exactly. *)
let assemble ?(kappa = Diffusion.unit_coefficient) (mesh : Mesh.t)
    (basis : Basis.t) =
  let p = mesh.Mesh.p in
  let nodes = basis.Basis.nodes in
  let hx = Mesh.hx mesh and hy = Mesh.hy mesh in
  let triplets = ref [] in
  (* 2D bilinear stencil on an (ax x ay) rectangle with coefficient k:
     exact element matrix for -div(k grad) with k constant per sub-cell *)
  let q1_element k ax ay =
    let rx = ax /. ay and ry = ay /. ax in
    (* standard bilinear stiffness: K = k/6 * [ 2(rx+ry)  rx-2ry  -(rx+ry)  ry-2rx ; ... ] *)
    let kmat = Array.make_matrix 4 4 0.0 in
    let a = k /. 6.0 in
    let d = 2.0 *. (rx +. ry) in
    let ex = (-2.0 *. ry) +. rx in
    let ey = (-2.0 *. rx) +. ry in
    let c = -.(rx +. ry) in
    (* node order: 0=(0,0) 1=(1,0) 2=(1,1) 3=(0,1) *)
    let vals =
      [|
        [| d; ex; c; ey |];
        [| ex; d; ey; c |];
        [| c; ey; d; ex |];
        [| ey; c; ex; d |];
      |]
    in
    for i = 0 to 3 do
      for j = 0 to 3 do
        kmat.(i).(j) <- a *. vals.(i).(j)
      done
    done;
    kmat
  in
  for ey = 0 to mesh.Mesh.ny - 1 do
    for ex = 0 to mesh.Mesh.nx - 1 do
      let x0 = float_of_int ex *. hx and y0 = float_of_int ey *. hy in
      for sj = 0 to p - 1 do
        for si = 0 to p - 1 do
          (* sub-cell spanning GLL nodes si..si+1, sj..sj+1 *)
          let ax = (nodes.(si + 1) -. nodes.(si)) /. 2.0 *. hx in
          let ay = (nodes.(sj + 1) -. nodes.(sj)) /. 2.0 *. hy in
          let xc = x0 +. ((nodes.(si) +. nodes.(si + 1) +. 2.0) /. 4.0 *. hx) in
          let yc = y0 +. ((nodes.(sj) +. nodes.(sj + 1) +. 2.0) /. 4.0 *. hy) in
          let k = kappa ~x:xc ~y:yc in
          let km = q1_element k ax ay in
          let corners =
            [|
              Mesh.global_dof mesh ~ex ~ey ~i:si ~j:sj;
              Mesh.global_dof mesh ~ex ~ey ~i:(si + 1) ~j:sj;
              Mesh.global_dof mesh ~ex ~ey ~i:(si + 1) ~j:(sj + 1);
              Mesh.global_dof mesh ~ex ~ey ~i:si ~j:(sj + 1);
            |]
          in
          for i = 0 to 3 do
            for j = 0 to 3 do
              if km.(i).(j) <> 0.0 then
                triplets := (corners.(i), corners.(j), km.(i).(j)) :: !triplets
            done
          done
        done
      done
    done
  done;
  let n = Mesh.num_dofs mesh in
  let a = Linalg.Csr.of_triplets ~m:n ~n !triplets in
  Diffusion.eliminate_dirichlet a (Mesh.boundary_dofs mesh)
