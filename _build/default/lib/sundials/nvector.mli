(** N_Vector: SUNDIALS' vector abstraction with device placement.

    The integrator only touches vectors through these operations; a
    backend decides where the data lives and charges the simulated clock
    for the streaming work. High-level control stays on the CPU — the
    paper's design — and data returns to the host only for I/O. *)

type backend

val serial_backend : backend

val device_backend : ?name:string -> Prog.Exec.ctx -> backend
(** Vector ops priced on a simulated device under the context's policy. *)

type t = { data : float array; backend : backend }

val create : ?backend:backend -> int -> t
val of_array : ?backend:backend -> float array -> t
val length : t -> int
val data : t -> float array
val get : t -> int -> float
val set : t -> int -> float -> unit
val clone : t -> t

val const : float -> t -> unit
(** Fill with a constant. *)

val linear_sum : float -> t -> float -> t -> t -> unit
(** [linear_sum a x b y z]: z <- a x + b y. *)

val prod : t -> t -> t -> unit
val scale : float -> t -> t -> unit
val inv : t -> t -> unit
val add_const : t -> float -> t -> unit
val dot : t -> t -> float
val max_norm : t -> float
val wrms_norm : t -> t -> float

val to_host_array : t -> float array
(** Copy values host-ward for I/O — the only place data leaves the
    device (charged as a transfer for device-resident backends). *)
