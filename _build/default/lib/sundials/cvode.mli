(** CVODE-style time integration: adaptive BDF with modified Newton for
    stiff problems, an Adams predictor-corrector with fixed-point
    iteration for non-stiff ones, and fixed-step explicit baselines.

    High-level control lives here (host side); all heavy lifting is in
    the [rhs] and [lsolve] callbacks, which decide device residency and
    simulated cost. Hooking hypre's AMG-preconditioned CG into [lsolve]
    reproduces the paper's MFEM/hypre/SUNDIALS stack. *)

type stats = {
  mutable nsteps : int;
  mutable nfevals : int;
  mutable nniters : int;  (** Newton / fixed-point iterations *)
  mutable nlsolves : int;
  mutable netf : int;  (** error-test failures *)
  mutable nncf : int;  (** nonlinear-convergence failures *)
}

val new_stats : unit -> stats

type rhs = float -> float array -> float array
(** [rhs t y] returns dy/dt. *)

type lsolve = gamma:float -> t:float -> y:float array -> b:float array -> float array
(** Approximate solve of (I - gamma J(t, y)) x = b. *)

exception Too_much_work of string
(** Raised when the step cap is exceeded or the step size underflows. *)

val error_weights : rtol:float -> atol:float -> float array -> float array

val dense_lsolve : jac:(float -> float array -> Linalg.Dense.t) -> lsolve
(** Direct dense lsolve from an analytic Jacobian. *)

val fd_dense_lsolve : rhs:rhs -> lsolve
(** Direct dense lsolve with a finite-difference Jacobian of [rhs]. *)

type result = { y : float array; t : float; stats : stats }

val bdf :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?newton_maxiters:int ->
  rhs:rhs ->
  lsolve:lsolve ->
  t0:float ->
  y0:float array ->
  float ->
  result
(** Adaptive BDF (order-1 start-up, order 2 thereafter, variable step)
    with modified Newton; the local-error estimate is corrector minus the
    quadratic history predictor. [bdf ~rhs ~lsolve ~t0 ~y0 tstop]. *)

val adams :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  ?fp_maxiters:int ->
  rhs:rhs ->
  t0:float ->
  y0:float array ->
  float ->
  result
(** Adams-Bashforth/Moulton predictor-corrector with functional
    iteration, for non-stiff problems. *)

val rk4 : rhs:rhs -> t0:float -> y0:float array -> steps:int -> float -> float array
(** Classic fixed-step RK4 baseline. *)

val euler : rhs:rhs -> t0:float -> y0:float array -> steps:int -> float -> float array
(** Forward Euler baseline (stability comparisons). *)

val erk23 :
  ?rtol:float ->
  ?atol:float ->
  ?h0:float ->
  ?max_steps:int ->
  rhs:rhs ->
  t0:float ->
  y0:float array ->
  float ->
  result
(** Adaptive explicit Bogacki-Shampine RK3(2) with an embedded error
    estimate (FSAL) — the ERK path for non-stiff problems. *)
