lib/sundials/nvector.mli: Prog
