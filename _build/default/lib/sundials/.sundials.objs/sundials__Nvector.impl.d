lib/sundials/nvector.ml: Array Linalg Prog
