lib/sundials/cvode.ml: Array Float Fmt Linalg List
