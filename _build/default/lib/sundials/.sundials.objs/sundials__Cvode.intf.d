lib/sundials/cvode.mli: Linalg
