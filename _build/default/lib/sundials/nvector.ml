(** N_Vector: SUNDIALS' vector abstraction with device placement.

    "SUNDIALS already expresses its vector and algebraic solver operations
    generically by abstracting the specific operations behind methods in
    backends" (Sec 4.10.2). The integrator only ever touches vectors through
    these operations; a backend decides where the data lives and charges
    the simulated clock for the streaming work. High-level control stays on
    the CPU — exactly the paper's design — and data only returns to the
    host when the user asks for I/O. *)

type backend = {
  name : string;
  ctx : Prog.Exec.ctx option;  (** simulated execution context, if priced *)
}

let serial_backend = { name = "serial"; ctx = None }

(** Backend executing vector ops on a simulated device under a policy. *)
let device_backend ?(name = "cuda") ctx = { name; ctx = Some ctx }

type t = { data : float array; backend : backend }

let create ?(backend = serial_backend) n =
  { data = Array.make n 0.0; backend }

let of_array ?(backend = serial_backend) a = { data = a; backend }

let length v = Array.length v.data
let data v = v.data
let get v i = v.data.(i)
let set v i x = v.data.(i) <- x

(** Charge a streaming op touching [vectors] arrays of length n with
    [flops_per] flops per element. *)
let charge v ~vectors ~flops_per =
  match v.backend.ctx with
  | None -> ()
  | Some ctx ->
      let n = length v in
      Prog.Exec.charge ctx ~phase:"nvector" ~n ~flops_per
        ~bytes_per:(8.0 *. float_of_int vectors)

let clone v = { data = Array.copy v.data; backend = v.backend }

let const c v =
  Array.fill v.data 0 (length v) c;
  charge v ~vectors:1 ~flops_per:0.0

(** z <- a x + b y *)
let linear_sum a x b y z =
  for i = 0 to length x - 1 do
    z.data.(i) <- (a *. x.data.(i)) +. (b *. y.data.(i))
  done;
  charge x ~vectors:3 ~flops_per:3.0

(** z <- x * y pointwise *)
let prod x y z =
  for i = 0 to length x - 1 do
    z.data.(i) <- x.data.(i) *. y.data.(i)
  done;
  charge x ~vectors:3 ~flops_per:1.0

let scale c x z =
  for i = 0 to length x - 1 do
    z.data.(i) <- c *. x.data.(i)
  done;
  charge x ~vectors:2 ~flops_per:1.0

(** z <- 1 / x pointwise *)
let inv x z =
  for i = 0 to length x - 1 do
    z.data.(i) <- 1.0 /. x.data.(i)
  done;
  charge x ~vectors:2 ~flops_per:1.0

let add_const x c z =
  for i = 0 to length x - 1 do
    z.data.(i) <- x.data.(i) +. c
  done;
  charge x ~vectors:2 ~flops_per:1.0

let dot x y =
  charge x ~vectors:2 ~flops_per:2.0;
  Linalg.Vec.dot x.data y.data

let max_norm x =
  charge x ~vectors:1 ~flops_per:1.0;
  Linalg.Vec.nrm_inf x.data

let wrms_norm x w =
  charge x ~vectors:2 ~flops_per:3.0;
  Linalg.Vec.wrms x.data w.data

(** Copy values host-ward for I/O; this is the only place data leaves the
    device (charged as a transfer when the backend is device-resident). *)
let to_host_array v =
  (match v.backend.ctx with
  | Some ctx when Prog.Policy.side ctx.Prog.Exec.policy = Prog.Policy.Accelerator ->
      Prog.Exec.transfer ctx ~bytes:(8.0 *. float_of_int (length v)) ()
  | _ -> ());
  Array.copy v.data
