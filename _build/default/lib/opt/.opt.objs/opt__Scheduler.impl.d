lib/opt/scheduler.ml: Array Fmt Icoe_util List
