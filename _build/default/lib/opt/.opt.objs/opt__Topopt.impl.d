lib/opt/topopt.ml: Array Hwsim Icoe_util Linalg
