lib/opt/topopt.mli: Hwsim
