lib/opt/scheduler.mli: Icoe_util
