(** SIMP topology optimization with a matrix-free solver — the Opt
    activity's GPU code. The design problem is heat-conduction compliance
    minimization on a 2D grid (the standard scalar benchmark): distribute
    a limited volume of conductive material so a heated region is best
    connected to a sink. The state solve is matrix-free CG on the
    density-dependent 5-point operator (the paper's "matrix-free solver
    implemented in CUDA"), and the texture-cache story of Sec 4.7 is a
    device-dependent bandwidth lever on that operator. *)

type t = {
  nx : int;
  ny : int;
  volfrac : float;  (** volume fraction of material allowed *)
  mutable penal : float;  (** SIMP penalization exponent *)
  rho : float array;  (** design densities in [rho_min, 1] *)
  mutable compliance : float;
  mutable cg_iters_total : int;
}

let rho_min = 1e-3

let create ?(volfrac = 0.4) ?(penal = 3.0) ~nx ~ny () =
  {
    nx;
    ny;
    volfrac;
    penal;
    rho = Array.make (nx * ny) volfrac;
    compliance = infinity;
    cg_iters_total = 0;
  }

let idx t i j = i + (t.nx * j)

(* SIMP conductivity of cell k *)
let conductivity t k = rho_min +. ((1.0 -. rho_min) *. (t.rho.(k) ** t.penal))

(** Is (i, j) part of the heat sink (a short segment centred on the
    bottom edge — the "volume-to-point" benchmark geometry)? *)
let is_sink t i j = j = 0 && abs (i - (t.nx / 2)) <= max 1 (t.nx / 8)

(* matrix-free application of the density-weighted 5-point operator with
   Dirichlet sink cells *)
let apply t u y =
  let nx = t.nx and ny = t.ny in
  for j = 0 to ny - 1 do
    for i = 0 to nx - 1 do
      let k = idx t i j in
      if is_sink t i j then y.(k) <- u.(k) (* sink: identity row *)
      else begin
        let kc = conductivity t k in
        let acc = ref 0.0 and diag = ref 0.0 in
        let couple k2 =
          (* arithmetic-mean link conductance (standard FE-style SIMP
             coupling; harmonic means over-block void links and destabilize
             the OC loop) *)
          let kk = 0.5 *. (kc +. conductivity t k2) in
          diag := !diag +. kk;
          acc := !acc +. (kk *. u.(k2))
        in
        if i > 0 then couple (idx t (i - 1) j);
        if i < nx - 1 then couple (idx t (i + 1) j);
        if j > 0 then couple (idx t i (j - 1));
        if j < ny - 1 then couple (idx t i (j + 1));
        y.(k) <- (!diag *. u.(k)) -. !acc
      end
    done
  done

(* heat load: flux enters along the top edge and must funnel down to the
   small central sink — the classic geometry whose optima are funnel/tree
   structures *)
let load t =
  Array.init (t.nx * t.ny) (fun k ->
      let j = k / t.nx in
      if j = t.ny - 1 then 1.0 else 0.0)

(** Solve the state equation; returns (temperature field, cg iterations). *)
let solve_state ?(tol = 1e-8) t =
  let n = t.nx * t.ny in
  let b = load t in
  let y = Array.make n 0.0 in
  let op u =
    apply t u y;
    Array.copy y
  in
  let r = Linalg.Krylov.cg ~tol ~max_iter:(8 * n) ~op b (Array.make n 0.0) in
  t.cg_iters_total <- t.cg_iters_total + r.Linalg.Krylov.iters;
  (r.Linalg.Krylov.x, r.Linalg.Krylov.iters)

(* optimality-criteria update with sensitivity = -dC/drho per cell *)
let oc_update t u =
  let n = t.nx * t.ny in
  let b = load t in
  (* compliance and cell sensitivities: C = u^T f; dC/drho_k ~
     -p rho^(p-1) * (local gradient energy) ; approximate with nodal
     temperature magnitude coupling *)
  t.compliance <- Linalg.Vec.dot u b;
  let sens = Array.make n 0.0 in
  for j = 0 to t.ny - 1 do
    for i = 0 to t.nx - 1 do
      let k = idx t i j in
      if not (is_sink t i j) then begin
      let _kc = conductivity t k in
      let dk_drho =
        t.penal *. (1.0 -. rho_min) *. (t.rho.(k) ** (t.penal -. 1.0))
      in
      let g2 = ref 0.0 in
      (* link sensitivity: arithmetic-mean link conductance (kc + kn)/2,
         d(link)/d(kc) = 1/2 *)
      let grad k2 =
        let d = u.(k) -. u.(k2) in
        g2 := !g2 +. (0.5 *. d *. d)
      in
      if i > 0 then grad (idx t (i - 1) j);
      if i < t.nx - 1 then grad (idx t (i + 1) j);
      if j > 0 then grad (idx t i (j - 1));
      if j < t.ny - 1 then grad (idx t i (j + 1));
      sens.(k) <- dk_drho *. !g2
      end
    done
  done;
  (* sensitivity filter (3x3 average): the standard guard against
     checkerboards and OC divergence *)
  let filtered = Array.make n 0.0 in
  for j = 0 to t.ny - 1 do
    for i = 0 to t.nx - 1 do
      let acc = ref 0.0 and cnt = ref 0 in
      for dj = -1 to 1 do
        for di = -1 to 1 do
          let i2 = i + di and j2 = j + dj in
          if i2 >= 0 && i2 < t.nx && j2 >= 0 && j2 < t.ny then begin
            acc := !acc +. sens.(idx t i2 j2);
            incr cnt
          end
        done
      done;
      filtered.(idx t i j) <- !acc /. float_of_int !cnt
    done
  done;
  let sens = filtered in
  (* bisection on the Lagrange multiplier to satisfy the volume constraint *)
  let total = float_of_int n *. t.volfrac in
  let lo = ref 1e-12 and hi = ref (1.0 +. Array.fold_left max 0.0 sens) in
  let new_rho = Array.make n 0.0 in
  for _ = 1 to 60 do
    let lam = 0.5 *. (!lo +. !hi) in
    let vol = ref 0.0 in
    for k = 0 to n - 1 do
      let scale = max 0.0 (sens.(k) /. lam) ** 0.3 in
      let v =
        max rho_min
          (min 1.0 (max (t.rho.(k) -. 0.05) (min (t.rho.(k) +. 0.05) (t.rho.(k) *. scale))))
      in
      new_rho.(k) <- v;
      vol := !vol +. v
    done;
    if !vol > total then lo := lam else hi := lam
  done;
  Array.blit new_rho 0 t.rho 0 n

(** Run [iters] SIMP iterations with penalization continuation (the
    exponent ramps from 1 to its target over the first half, the standard
    guard against premature local minima); returns the compliance
    history. *)
let optimize ?(iters = 20) t =
  let target = t.penal in
  Array.init iters (fun it ->
      t.penal <-
        min target
          (1.0 +. ((target -. 1.0) *. float_of_int it /. (0.5 *. float_of_int iters)));
      let u, _ = solve_state t in
      oc_update t u;
      t.compliance)

let volume t = Icoe_util.Stats.mean t.rho

(* --- the Sec 4.7 texture-cache lever --- *)

(** Effective bandwidth fraction of the matrix-free apply: on Pascal the
    scattered density reads need the texture path; on Volta the unified
    L1 makes plain loads equally fast (which is why CUDA-specific texture
    code bought nothing on the final system and RAJA would have sufficed). *)
let apply_bandwidth_frac (d : Hwsim.Device.t) ~textures =
  match (d.Hwsim.Device.name, textures) with
  | "P100", true -> 0.72
  | "P100", false -> 0.42
  | "V100", _ -> 0.75
  | _, true -> 0.6
  | _, false -> 0.45

(** Simulated time of one matrix-free apply over [cells] cells. *)
let apply_time ~cells (d : Hwsim.Device.t) ~textures =
  let bytes = float_of_int cells *. 8.0 *. 7.0 in
  let bw = d.Hwsim.Device.mem_bw_gbs *. 1e9 *. apply_bandwidth_frac d ~textures in
  d.Hwsim.Device.launch_overhead_s +. (bytes /. bw)
