(** SIMP topology optimization with a matrix-free solver — the Opt
    activity's GPU code. Heat-conduction compliance minimization: flux
    enters along the top edge and must funnel to a short sink segment on
    the bottom edge; the optimizer distributes a limited material budget
    (the optimal designs are funnels/trees, the benchmark behind the
    drone-design engine of Fig 5). *)

type t = {
  nx : int;
  ny : int;
  volfrac : float;
  mutable penal : float;  (** SIMP exponent, ramped by continuation *)
  rho : float array;  (** design densities in [rho_min, 1] *)
  mutable compliance : float;
  mutable cg_iters_total : int;
}

val rho_min : float

val create : ?volfrac:float -> ?penal:float -> nx:int -> ny:int -> unit -> t

val idx : t -> int -> int -> int
val is_sink : t -> int -> int -> bool
val conductivity : t -> int -> float

val apply : t -> float array -> float array -> unit
(** Matrix-free density-weighted 5-point operator (the paper's CUDA
    matrix-free solve). *)

val load : t -> float array

val solve_state : ?tol:float -> t -> float array * int
(** CG solve of the state equation: (temperature field, iterations). *)

val oc_update : t -> float array -> unit
(** Filtered optimality-criteria design update under the volume
    constraint. *)

val optimize : ?iters:int -> t -> float array
(** SIMP iterations with penalization continuation; returns the
    compliance history. *)

val volume : t -> float

val apply_bandwidth_frac : Hwsim.Device.t -> textures:bool -> float
(** The Sec 4.7 texture-cache lever: scattered reads need the texture
    path on Pascal; Volta's unified L1 makes it moot. *)

val apply_time : cells:int -> Hwsim.Device.t -> textures:bool -> float
