(** Deterministic, splittable pseudo-random streams (splitmix64).

    Every stochastic component of the workload takes an explicit [Rng.t] so
    that tests and experiments are exactly reproducible across runs and
    machines. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: one 64-bit multiply-xor-shift round per draw. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Independent child stream; advancing the child never perturbs the parent. *)
let split t =
  let s = next_int64 t in
  { state = Int64.mul s 0x2545F4914F6CDD1DL }

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform float in [lo, hi). *)
let uniform t lo hi = lo +. ((hi -. lo) *. float t)

(** Uniform int in [0, n). Requires n > 0. Rejection sampling: the draw
    is uniform over [0, 2^62) and 2^62 is rarely a multiple of [n], so a
    bare [mod] overweights small remainders; redrawing whenever the value
    lands in the final partial bucket removes the bias while leaving the
    accepted stream (and thus existing golden values) unchanged. *)
let rec int t n =
  assert (n > 0);
  (* shift by 2 keeps the value within OCaml's 63-bit native int range *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  let r = v mod n in
  (* v - r is the bucket base; the bucket is partial iff it extends past
     max_int = 2^62 - 1 *)
  if v - r > max_int - n + 1 then int t n else r

let bool t = float t < 0.5

(** Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = max 1e-300 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let normal t ~mu ~sigma = mu +. (sigma *. gaussian t)

(** Exponential with given [rate] (mean 1/rate). *)
let exponential t ~rate =
  assert (rate > 0.0);
  -.log (max 1e-300 (float t)) /. rate

(** Sample an index from unnormalized nonneg weights at quantile [u] in
    [0, 1). The walk is capped at the last positive-weight index, so no
    float quirk (e.g. the total overflowing to infinity, which makes
    every [x < acc] comparison false) can ever select a trailing
    zero-weight category. Pure; exposed so boundary cases are testable. *)
let categorical_from u weights =
  assert (u >= 0.0 && u < 1.0);
  let total = Array.fold_left ( +. ) 0.0 weights in
  assert (total > 0.0);
  let x = u *. total in
  let last = ref 0 in
  Array.iteri (fun i w -> if w > 0.0 then last := i) weights;
  let rec go i acc =
    if i >= !last then !last
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0

let categorical t weights = categorical_from (float t) weights

(** Fisher-Yates shuffle in place. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
