(** Deterministic, splittable pseudo-random streams (splitmix64).

    Every stochastic component of the workload takes an explicit [t] so
    that tests and experiments are exactly reproducible across runs and
    machines. *)

type t
(** A mutable random stream. *)

val create : int -> t
(** [create seed] makes a fresh stream; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy at the current state. *)

val next_int64 : t -> int64
(** One raw splitmix64 output; advances the stream. *)

val split : t -> t
(** Child stream whose draws never perturb the parent's future draws. *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi]: uniform in [lo, hi). *)

val int : t -> int -> int
(** [int t n]: uniform in [0, n). Requires [n > 0]. Bias-free: the top
    partial bucket of the underlying 62-bit draw is rejected and redrawn
    rather than folded over small remainders. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal (Box-Muller). *)

val normal : t -> mu:float -> sigma:float -> float

val exponential : t -> rate:float -> float
(** Exponential with mean [1/rate]. Requires [rate > 0]. *)

val categorical : t -> float array -> int
(** Sample an index proportionally to unnormalized nonnegative weights.
    Never returns a zero-weight trailing index, whatever float rounding
    does to the partial sums. *)

val categorical_from : float -> float array -> int
(** [categorical_from u weights]: the pure sampler behind [categorical],
    drawing at quantile [u] in [0, 1). *)

val shuffle : t -> 'a array -> unit
(** Fisher-Yates shuffle in place. *)
