lib/util/rng.mli:
