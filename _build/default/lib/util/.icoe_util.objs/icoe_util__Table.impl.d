lib/util/table.ml: Array Buffer Fmt List String
