lib/util/stats.mli:
