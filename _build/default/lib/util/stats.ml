(** Small descriptive-statistics helpers used by experiment harnesses. *)

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) ** 2.0)) 0.0 a in
    acc /. float_of_int (n - 1)

let stddev a = sqrt (variance a)

let min_max a =
  assert (Array.length a > 0);
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (a.(0), a.(0))
    a

let sum = Array.fold_left ( +. ) 0.0

(** Sorted copy for repeated quantile queries. [Float.compare] (total
    order, NaN first) keeps the sort monomorphic — the polymorphic
    [compare] walks the runtime representation on every comparison. *)
let presort a =
  let s = Array.copy a in
  Array.sort Float.compare s;
  s

(** p in [0,1]; linear interpolation between the order statistics of an
    already-sorted array (see [presort]) — sort once, query many. *)
let percentile_sorted s p =
  let n = Array.length s in
  assert (n > 0);
  assert (p >= 0.0 && p <= 1.0);
  let idx = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor idx) in
  let hi = int_of_float (Float.ceil idx) in
  if lo = hi then s.(lo)
  else
    let w = idx -. float_of_int lo in
    ((1.0 -. w) *. s.(lo)) +. (w *. s.(hi))

let percentile a p = percentile_sorted (presort a) p
let median a = percentile a 0.5

(** Relative L2 error ||a - b|| / ||b||. *)
let rel_l2_error a b =
  assert (Array.length a = Array.length b);
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      num := !num +. (d *. d);
      den := !den +. (b.(i) *. b.(i)))
    a;
  if !den = 0.0 then sqrt !num else sqrt (!num /. !den)

let max_abs_diff a b =
  assert (Array.length a = Array.length b);
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := max !m (Float.abs (x -. b.(i)))) a;
  !m
