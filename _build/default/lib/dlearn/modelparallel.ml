(** Real model-parallel execution: the LBANN idea at MLP scale.

    Each hidden layer's neurons are partitioned across [shards] simulated
    GPUs; every shard computes only its slice of the forward and backward
    passes, and the full activation/delta vectors are reassembled with
    all-gathers whose bytes are charged to a clock. The partitioned
    network computes *bit-identical* results to the unpartitioned one
    (tested) — exactly the property that makes spatial/model parallelism
    safe to deploy — while communication cost grows with shard count,
    which is where Fig 3's scaling curves come from. *)

type t = {
  reference : Mlp.t;  (** the unpartitioned network (shared weights) *)
  shards : int;
  clock : Hwsim.Clock.t;
  link : Hwsim.Link.t;
}

let create ?(link = Hwsim.Link.nvlink2) ~shards mlp =
  assert (shards >= 1);
  { reference = mlp; shards; clock = Hwsim.Clock.create (); link }

(* slice bounds of shard s over n units *)
let slice ~shards ~s n =
  let lo = n * s / shards and hi = n * (s + 1) / shards in
  (lo, hi)

let charge_allgather t ~floats =
  (* ring all-gather: (shards-1) hops each carrying one slice *)
  let bytes = 8.0 *. float_of_int floats /. float_of_int t.shards in
  let hops = float_of_int (t.shards - 1) in
  Hwsim.Clock.tick t.clock ~phase:"allgather"
    (hops *. Hwsim.Link.transfer_time t.link ~bytes)

(** Forward pass with each layer's output units computed shard by shard,
    followed by an all-gather of the assembled activation. Returns the
    class probabilities. *)
let predict_proba t x =
  let m = t.reference in
  let nl = Array.length m.Mlp.layers in
  let act = ref x in
  for l = 0 to nl - 1 do
    let lay = m.Mlp.layers.(l) in
    let nout = Array.length lay.Mlp.b in
    let z = Array.make nout 0.0 in
    (* each shard computes its slice of output units *)
    for s = 0 to t.shards - 1 do
      let lo, hi = slice ~shards:t.shards ~s nout in
      for o = lo to hi - 1 do
        let acc = ref lay.Mlp.b.(o) in
        Array.iteri (fun i v -> acc := !acc +. (lay.Mlp.w.(o).(i) *. v)) !act;
        z.(o) <- !acc
      done
    done;
    charge_allgather t ~floats:nout;
    act := (if l = nl - 1 then z else Array.map tanh z)
  done;
  Mlp.softmax !act

(** Per-batch time model: compute divided across shards, one all-gather
    per layer. Used to produce real strong-scaling curves from the actual
    parameter counts. *)
let batch_time t ~batch =
  let params = Mlp.num_params t.reference in
  let compute =
    6.0 *. float_of_int (params * batch)
    /. (Hwsim.Device.v100.Hwsim.Device.peak_gflops *. 1e9 *. 0.3)
    /. float_of_int t.shards
  in
  let comm =
    Array.fold_left
      (fun acc lay ->
        let nout = Array.length lay.Mlp.b in
        let bytes = 8.0 *. float_of_int (nout * batch) /. float_of_int t.shards in
        acc
        +. (float_of_int (t.shards - 1)
           *. Hwsim.Link.transfer_time t.link ~bytes))
      0.0 t.reference.Mlp.layers
  in
  compute +. comm

(** Strong-scaling speedup of [shards] GPUs over one, from the real
    per-batch time model of this network. *)
let strong_scaling ~link mlp ~batch ~shards =
  let t1 = batch_time (create ~link ~shards:1 mlp) ~batch in
  let ts = batch_time (create ~link ~shards mlp) ~batch in
  t1 /. ts
