(** Dense multi-layer perceptron with manual backprop — the
    neural-network substrate for the distributed-training studies and the
    Table 3 ensemble combiners. Tanh hidden layers, softmax cross-entropy
    output, SGD with optional momentum. *)

type layer = {
  w : float array array;  (** out x in *)
  b : float array;
  gw : float array array;  (** accumulated gradients *)
  gb : float array;
  mw : float array array;  (** momentum buffers *)
  mb : float array;
}

type t = { sizes : int array; layers : layer array }

val create : rng:Icoe_util.Rng.t -> int array -> t
(** [create ~rng [|in; hidden...; out|]] with He-scaled init. *)

val num_params : t -> int

val get_params : t -> float array
(** Flattened parameters (layer-major, weights then biases). *)

val set_params : t -> float array -> unit

val softmax : float array -> float array

val forward_full : t -> float array -> float array array
(** All layer activations (index 0 is the input, last is pre-softmax). *)

val predict_proba : t -> float array -> float array
val predict : t -> float array -> int

val zero_grads : t -> unit

val backward : t -> float array -> label:int -> float
(** Accumulate gradients of the cross-entropy for one example; returns
    the loss. *)

val sgd_step : ?momentum:float -> ?weight_decay:float -> t -> lr:float -> batch:int -> unit
(** Apply accumulated gradients (scaled by 1/batch) and clear them. *)

val train_batch :
  ?momentum:float -> t -> lr:float -> float array array -> int array -> float
(** One mini-batch step; returns the mean loss. *)

val accuracy : t -> float array array -> int array -> float
val eval_loss : t -> float array array -> int array -> float

val clone : t -> t
