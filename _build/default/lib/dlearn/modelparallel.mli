(** Real model-parallel execution: the LBANN idea at MLP scale. Each
    hidden layer's neurons are partitioned across simulated GPUs; full
    activations are reassembled by all-gathers whose bytes are charged to
    a clock. The partitioned network computes bit-identical results to the
    unpartitioned one while communication grows with shard count — where
    Fig 3's scaling curvature comes from. *)

type t = {
  reference : Mlp.t;  (** the unpartitioned network (shared weights) *)
  shards : int;
  clock : Hwsim.Clock.t;
  link : Hwsim.Link.t;
}

val create : ?link:Hwsim.Link.t -> shards:int -> Mlp.t -> t

val predict_proba : t -> float array -> float array
(** Sharded forward pass; identical to [Mlp.predict_proba reference]. *)

val batch_time : t -> batch:int -> float
(** Per-batch time: compute divided across shards plus one ring
    all-gather per layer, from the network's real parameter counts. *)

val strong_scaling : link:Hwsim.Link.t -> Mlp.t -> batch:int -> shards:int -> float
