(** The Fig 3 scaling study: LBANN-style training with each *sample*
    partitioned across multiple GPUs, on top of data parallelism, up to
    2048 GPUs. Constants calibrated to the paper's strong-scaling points
    (near-perfect 2->4, 2.8x at 8, 3.4x at 16 GPUs per sample). *)

val model_memory_gb : float
(** The semantic-segmentation model exceeds one V100's 16 GB. *)

val min_gpus_per_sample : int
(** The resulting >= 2 GPUs/sample constraint. *)

val group_time : int -> float
(** Per-mini-batch seconds for one sample group of g GPUs. *)

val strong_scaling_speedup : int -> float
(** Speedup of g GPUs per sample over the 2-GPU baseline (the paper's
    dotted lines). *)

val weak_scaling_throughput : total_gpus:int -> g:int -> float
(** Samples/s with [total_gpus] split into groups of [g] (the solid
    lines). *)

val weak_scaling_efficiency : g:int -> total0:int -> total1:int -> float
(** Fraction of ideal when growing from [total0] to [total1] GPUs. *)
