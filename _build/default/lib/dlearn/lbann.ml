(** The Fig 3 scaling study: LBANN-style training with each *sample*
    partitioned across multiple GPUs (model/spatial parallelism), on top
    of conventional data parallelism, up to 2048 GPUs.

    Per mini-batch time for a group of [gpus_per_sample] = g GPUs:

        t(g) = compute/g + halo(g) + allreduce

    halo grows with g (more partition boundaries exchange activations over
    NVLink); the data-parallel allreduce grows logarithmically with the
    number of groups. Constants calibrated to the paper's strong-scaling
    points: near-perfect 2->4, 2.8x at 8, 3.4x at 16 GPUs per sample. *)

(** The semantic-segmentation model is bigger than one V100's 16 GB: at
    least two GPUs per sample are required (the paper's constraint). *)
let model_memory_gb = 24.0

let min_gpus_per_sample =
  int_of_float
    (Float.ceil (model_memory_gb /. Hwsim.Device.v100.Hwsim.Device.mem_gb))

(* calibrated constants (seconds per mini-batch at reference size) *)
let compute_full = 1.0
let halo_log = 0.010
let halo_linear = 0.003

(** Per-batch time for one sample group of [g] GPUs. *)
let group_time g =
  assert (g >= 1);
  let gf = float_of_int g in
  (compute_full /. gf)
  +. (halo_log *. Float.log2 (max 2.0 gf))
  +. (halo_linear *. gf)

(** Strong-scaling speedup of g GPUs per sample relative to the 2-GPU
    baseline (the paper's dotted lines). *)
let strong_scaling_speedup g = group_time min_gpus_per_sample /. group_time g

(** Weak scaling: total throughput (samples/s) using [total_gpus] with
    [g] GPUs per sample; the data-parallel allreduce across groups adds a
    log term (the solid lines staying nearly flat). *)
let weak_scaling_throughput ~total_gpus ~g =
  assert (total_gpus >= g);
  let groups = total_gpus / g in
  let allreduce =
    0.004 *. Float.log2 (max 2.0 (float_of_int groups))
  in
  float_of_int groups /. (group_time g +. allreduce)

(** Parallel efficiency of weak scaling from [groups0] to [groups1]
    groups (fraction of ideal). *)
let weak_scaling_efficiency ~g ~total0 ~total1 =
  let t0 = weak_scaling_throughput ~total_gpus:total0 ~g in
  let t1 = weak_scaling_throughput ~total_gpus:total1 ~g in
  t1 /. t0 /. (float_of_int total1 /. float_of_int total0)
