(** The Table 3 study: three-stream video action recognition, reproduced
    as a controlled ensemble experiment.

    The paper's streams are convnets over RGB (spatial), optical flow
    (temporal) and SPyNet-enhanced flow; here each stream is a feature
    generator whose per-class informativeness is controlled, and the
    stream classifiers plus combiners are trained for real:

    - streams carry complementary information (each is blind to some class
      distinctions), so fusion beats every single stream;
    - on the harder dataset the streams' reliability varies per class,
      which simple averaging cannot exploit but learned combiners
      (logistic regression / shallow NN) can — the HMDB51 column's story,
      where logistic regression tops the table. *)

type difficulty = Easy  (** UCF101-like *) | Hard  (** HMDB51-like *)

type dataset = {
  streams : float array array array;  (** stream -> sample -> features *)
  labels : int array;
  classes : int;
  dim : int;
}

let n_streams = 3

(* Per-stream class-mean construction: stream s only separates classes in
   its "visible" partition; others collapse to a shared mean. On Hard,
   noise is higher and visibility sparser. *)
let make ~(rng : Icoe_util.Rng.t) ?(classes = 8) ?(dim = 10) ?(n = 1600)
    ?noise ?label_noise difficulty =
  let noise =
    match noise with
    | Some v -> v
    | None -> ( match difficulty with Easy -> 1.0 | Hard -> 2.4)
  in
  (* visibility: on Easy each stream is blind to a quarter of classes (two
     streams always remain sighted); on Hard every class blinds one
     stream, and even classes blind a second one, leaving a single
     reliable witness that majority averaging cannot identify *)
  let visible s c =
    match difficulty with
    | Easy -> (c + s) mod 8 <> 0
    | Hard -> not (c mod 3 = s || (c mod 2 = 0 && (c + 1) mod 3 = s))
  in
  let means =
    Array.init n_streams (fun s ->
        let base =
          Array.init classes (fun _ ->
              Array.init dim (fun _ -> Icoe_util.Rng.uniform rng (-2.0) 2.0))
        in
        (* a blind stream does not see "nothing": it confuses the class
           with a neighbouring one (aliases its mean), so it votes
           confidently and wrongly — the failure mode simple averaging
           cannot repair but a learned combiner can *)
        Array.init classes (fun c ->
            if visible s c then base.(c)
            else base.((c + 1) mod classes)))
  in
  (* irreducible label noise (ambiguous clips): caps every approach at
     the dataset's intrinsic ceiling, as real benchmarks do *)
  let label_noise =
    match label_noise with
    | Some v -> v
    | None -> ( match difficulty with Easy -> 0.06 | Hard -> 0.15)
  in
  let labels = Array.init n (fun _ -> Icoe_util.Rng.int rng classes) in
  let observed_labels =
    Array.map
      (fun c ->
        if Icoe_util.Rng.float rng < label_noise then Icoe_util.Rng.int rng classes
        else c)
      labels
  in
  (* part of the noise is a per-sample nuisance shared by all streams
     (lighting, camera motion): fusion cannot average it away, which keeps
     ensemble gains at the paper's modest scale *)
  let common_frac = match difficulty with Easy -> 0.8 | Hard -> 0.6 in
  let common =
    Array.init n (fun _ ->
        Array.init dim (fun _ -> Icoe_util.Rng.gaussian rng))
  in
  let streams =
    Array.init n_streams (fun s ->
        Array.mapi
          (fun i c ->
            Array.init dim (fun d ->
                means.(s).(c).(d)
                +. (noise *. common_frac *. common.(i).(d))
                +. (noise *. (1.0 -. common_frac) *. Icoe_util.Rng.gaussian rng)))
          labels)
  in
  { streams; labels = observed_labels; classes; dim }

let split ~(frac : float) (d : dataset) =
  let n = Array.length d.labels in
  let ntr = int_of_float (frac *. float_of_int n) in
  let take lo hi =
    {
      streams = Array.map (fun s -> Array.sub s lo (hi - lo)) d.streams;
      labels = Array.sub d.labels lo (hi - lo);
      classes = d.classes;
      dim = d.dim;
    }
  in
  (take 0 ntr, take ntr n)

(* train a softmax regression (no hidden layer) on one stream *)
let train_stream ~(rng : Icoe_util.Rng.t) (d : dataset) s =
  let m = Mlp.create ~rng [| d.dim; d.classes |] in
  for _ = 1 to 150 do
    ignore (Mlp.train_batch m ~lr:0.1 d.streams.(s) d.labels)
  done;
  m

type combiner =
  | Single of int
  | Simple_average
  | Weighted_average
  | Logistic_regression
  | Shallow_nn
  | End_to_end
      (** one network over the concatenated raw features — the I3D-style
          single-model comparison row of Table 3 *)

let combiner_name = function
  | Single 0 -> "Spatial Stream"
  | Single 1 -> "Temporal Stream"
  | Single 2 -> "SPyNet Stream"
  | Single _ -> "Stream"
  | Simple_average -> "Simple Average"
  | Weighted_average -> "Weighted Average"
  | Logistic_regression -> "Logistic Regression"
  | Shallow_nn -> "Shallow NN"
  | End_to_end -> "I3D-like (end-to-end)"

type study = {
  stream_models : Mlp.t array;
  stream_accs : float array;  (** on train split, for weighting *)
  train : dataset;
  test : dataset;
}

let prepare ?noise ?label_noise ~(rng : Icoe_util.Rng.t) difficulty =
  let data = make ~rng ?noise ?label_noise difficulty in
  let train, test = split ~frac:0.6 data in
  let stream_models = Array.init n_streams (train_stream ~rng train) in
  let stream_accs =
    Array.mapi (fun s m -> Mlp.accuracy m train.streams.(s) train.labels) stream_models
  in
  { stream_models; stream_accs; train; test }

(* stacked log-probability features for sample i of dataset d (log probs
   are the standard stacking features: linear in them, a combiner can
   reweight per stream and class) *)
let stacked_probs st (d : dataset) i =
  Array.concat
    (List.init n_streams (fun s ->
         Array.map
           (fun p -> log (max 1e-9 p))
           (Mlp.predict_proba st.stream_models.(s) d.streams.(s).(i))))

let argmax a =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > a.(!best) then best := i) a;
  !best

(** Test accuracy of a combination approach (trains the stacking models
    where needed). *)
let evaluate ~(rng : Icoe_util.Rng.t) st comb =
  let test = st.test in
  let ntest = Array.length test.labels in
  match comb with
  | Single s ->
      Mlp.accuracy st.stream_models.(s) test.streams.(s) test.labels
  | Simple_average | Weighted_average ->
      let weights =
        match comb with
        | Weighted_average ->
            let z = Icoe_util.Stats.sum st.stream_accs in
            Array.map (fun a -> a /. z) st.stream_accs
        | _ -> Array.make n_streams (1.0 /. float_of_int n_streams)
      in
      let correct = ref 0 in
      for i = 0 to ntest - 1 do
        let acc = Array.make test.classes 0.0 in
        for s = 0 to n_streams - 1 do
          let p = Mlp.predict_proba st.stream_models.(s) test.streams.(s).(i) in
          Array.iteri (fun c v -> acc.(c) <- acc.(c) +. (weights.(s) *. v)) p
        done;
        if argmax acc = test.labels.(i) then incr correct
      done;
      float_of_int !correct /. float_of_int ntest
  | End_to_end ->
      (* a single model on concatenated raw features: strong on the easy
         set, but it must *discover* the per-class stream reliabilities
         that the stacked combiners get for free from calibrated
         probabilities — with limited capacity/epochs it falls behind on
         the hard set, as I3D (without huge pretraining) did on HMDB51 *)
      let train = st.train in
      (* end-to-end models are data-hungry: without external pretraining
         they see effectively less usable data than calibrated per-stream
         classifiers (which solve three easier sub-problems); modelled by
         training on a quarter of the split *)
      let ntrain = Array.length train.labels / 4 in
      let concat (d : dataset) i =
        Array.concat (List.init n_streams (fun s -> d.streams.(s).(i)))
      in
      let xs = Array.init ntrain (concat train) in
      let labels = Array.sub train.labels 0 ntrain in
      let m = Mlp.create ~rng [| n_streams * train.dim; 12; train.classes |] in
      for _ = 1 to 120 do
        ignore (Mlp.train_batch ~momentum:0.9 m ~lr:0.03 xs labels)
      done;
      let test = st.test in
      let txs = Array.init (Array.length test.labels) (concat test) in
      Mlp.accuracy m txs test.labels
  | Logistic_regression | Shallow_nn ->
      let train = st.train in
      let ntrain = Array.length train.labels in
      let xs = Array.init ntrain (stacked_probs st train) in
      let sizes =
        match comb with
        | Shallow_nn -> [| n_streams * train.classes; 16; train.classes |]
        | _ -> [| n_streams * train.classes; train.classes |]
      in
      let m = Mlp.create ~rng sizes in
      for _ = 1 to 400 do
        ignore (Mlp.train_batch ~momentum:0.9 m ~lr:0.05 xs train.labels)
      done;
      let txs = Array.init ntest (stacked_probs st test) in
      Mlp.accuracy m txs test.labels

(** Run the full Table 3 grid: returns (combiner, accuracy) rows. *)
let table3 ?noise ?label_noise ~(rng : Icoe_util.Rng.t) difficulty =
  let st = prepare ?noise ?label_noise ~rng difficulty in
  List.map
    (fun c -> (c, evaluate ~rng st c))
    [
      Single 0; Single 1; Single 2;
      Simple_average; Weighted_average; Logistic_regression; Shallow_nn;
      End_to_end;
    ]
