(** Dense multi-layer perceptron with manual backprop — the neural-network
    substrate for the distributed-training studies and the Table 3
    ensemble combiners. Deliberately simple: tanh hidden layers, softmax
    cross-entropy output, plain SGD with optional momentum. *)

type layer = {
  w : float array array;  (** out x in *)
  b : float array;
  (* gradients *)
  gw : float array array;
  gb : float array;
  (* momentum buffers *)
  mw : float array array;
  mb : float array;
}

type t = {
  sizes : int array;  (** [in; hidden...; out] *)
  layers : layer array;
}

let create ~(rng : Icoe_util.Rng.t) sizes =
  assert (Array.length sizes >= 2);
  let layers =
    Array.init (Array.length sizes - 1) (fun l ->
        let nin = sizes.(l) and nout = sizes.(l + 1) in
        let scale = sqrt (2.0 /. float_of_int nin) in
        {
          w =
            Array.init nout (fun _ ->
                Array.init nin (fun _ -> scale *. Icoe_util.Rng.gaussian rng));
          b = Array.make nout 0.0;
          gw = Array.make_matrix nout nin 0.0;
          gb = Array.make nout 0.0;
          mw = Array.make_matrix nout nin 0.0;
          mb = Array.make nout 0.0;
        })
  in
  { sizes; layers }

let num_params t =
  Array.fold_left
    (fun acc l -> acc + (Array.length l.b * (1 + Array.length l.w.(0))))
    0 t.layers

(** Flatten / restore parameters (for averaging in KAVG and ASGD). *)
let get_params t =
  let buf = Array.make (num_params t) 0.0 in
  let k = ref 0 in
  Array.iter
    (fun l ->
      Array.iter (Array.iter (fun v -> buf.(!k) <- v; incr k)) l.w;
      Array.iter (fun v -> buf.(!k) <- v; incr k) l.b)
    t.layers;
  buf

let set_params t buf =
  let k = ref 0 in
  Array.iter
    (fun l ->
      Array.iter
        (fun row -> Array.iteri (fun j _ -> row.(j) <- buf.(!k); incr k) row)
        l.w;
      Array.iteri (fun j _ -> l.b.(j) <- buf.(!k); incr k) l.b)
    t.layers

let softmax z =
  let mx = Array.fold_left max neg_infinity z in
  let e = Array.map (fun v -> exp (v -. mx)) z in
  let s = Icoe_util.Stats.sum e in
  Array.map (fun v -> v /. s) e

(* forward pass keeping activations for backprop *)
let forward_full t x =
  let nl = Array.length t.layers in
  let acts = Array.make (nl + 1) [||] in
  acts.(0) <- x;
  for l = 0 to nl - 1 do
    let lay = t.layers.(l) in
    let z =
      Array.mapi
        (fun o row ->
          let s = ref lay.b.(o) in
          Array.iteri (fun i v -> s := !s +. (v *. acts.(l).(i))) row;
          !s)
        lay.w
    in
    acts.(l + 1) <- (if l = nl - 1 then z else Array.map tanh z)
  done;
  acts

(** Class probabilities for input [x]. *)
let predict_proba t x =
  let acts = forward_full t x in
  softmax acts.(Array.length t.layers)

let predict t x =
  let p = predict_proba t x in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > p.(!best) then best := i) p;
  !best

let zero_grads t =
  Array.iter
    (fun l ->
      Array.iter (fun row -> Array.fill row 0 (Array.length row) 0.0) l.gw;
      Array.fill l.gb 0 (Array.length l.gb) 0.0)
    t.layers

(** Accumulate gradients of softmax cross-entropy for one example;
    returns the loss. *)
let backward t x ~label =
  let nl = Array.length t.layers in
  let acts = forward_full t x in
  let probs = softmax acts.(nl) in
  let loss = -.log (max 1e-12 probs.(label)) in
  (* output delta *)
  let delta = ref (Array.mapi (fun i p -> p -. (if i = label then 1.0 else 0.0)) probs) in
  for l = nl - 1 downto 0 do
    let lay = t.layers.(l) in
    let a_in = acts.(l) in
    (* grads *)
    Array.iteri
      (fun o d ->
        lay.gb.(o) <- lay.gb.(o) +. d;
        Array.iteri
          (fun i ai -> lay.gw.(o).(i) <- lay.gw.(o).(i) +. (d *. ai))
          a_in)
      !delta;
    (* propagate *)
    if l > 0 then begin
      let nin = Array.length a_in in
      let nd = Array.make nin 0.0 in
      Array.iteri
        (fun o d ->
          Array.iteri (fun i wv -> nd.(i) <- nd.(i) +. (d *. wv)) lay.w.(o))
        !delta;
      (* through tanh *)
      delta := Array.mapi (fun i v -> v *. (1.0 -. (a_in.(i) *. a_in.(i)))) nd
    end
  done;
  loss

(** Apply accumulated gradients (scaled by 1/batch) with learning rate and
    momentum, then clear them. *)
let sgd_step ?(momentum = 0.0) ?(weight_decay = 0.0) t ~lr ~batch =
  let scale = 1.0 /. float_of_int (max 1 batch) in
  Array.iter
    (fun l ->
      Array.iteri
        (fun o row ->
          Array.iteri
            (fun i _ ->
              let g = (l.gw.(o).(i) *. scale) +. (weight_decay *. row.(i)) in
              l.mw.(o).(i) <- (momentum *. l.mw.(o).(i)) -. (lr *. g);
              row.(i) <- row.(i) +. l.mw.(o).(i))
            row;
          let g = l.gb.(o) *. scale in
          l.mb.(o) <- (momentum *. l.mb.(o)) -. (lr *. g);
          l.b.(o) <- l.b.(o) +. l.mb.(o))
        l.w)
    t.layers;
  zero_grads t

(** One mini-batch step; returns mean loss. *)
let train_batch ?(momentum = 0.0) t ~lr xs labels =
  assert (Array.length xs = Array.length labels);
  let total = ref 0.0 in
  Array.iteri (fun k x -> total := !total +. backward t x ~label:labels.(k)) xs;
  sgd_step ~momentum t ~lr ~batch:(Array.length xs);
  !total /. float_of_int (Array.length xs)

(** Classification accuracy over a dataset. *)
let accuracy t xs labels =
  let correct = ref 0 in
  Array.iteri (fun k x -> if predict t x = labels.(k) then incr correct) xs;
  float_of_int !correct /. float_of_int (Array.length xs)

(** Mean loss without updating. *)
let eval_loss t xs labels =
  let total = ref 0.0 in
  Array.iteri
    (fun k x ->
      let p = predict_proba t x in
      total := !total -. log (max 1e-12 p.(labels.(k))))
    xs;
  total.contents /. float_of_int (Array.length xs)

(** Deep copy. *)
let clone t =
  let c = create ~rng:(Icoe_util.Rng.create 0) t.sizes in
  set_params c (get_params t);
  c
