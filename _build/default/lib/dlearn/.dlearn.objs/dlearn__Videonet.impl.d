lib/dlearn/videonet.ml: Array Icoe_util List Mlp
