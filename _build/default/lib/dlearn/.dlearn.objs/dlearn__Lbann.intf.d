lib/dlearn/lbann.mli:
