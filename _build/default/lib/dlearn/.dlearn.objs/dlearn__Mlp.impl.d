lib/dlearn/mlp.ml: Array Icoe_util
