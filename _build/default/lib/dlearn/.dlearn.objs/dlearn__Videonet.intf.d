lib/dlearn/videonet.mli: Icoe_util
