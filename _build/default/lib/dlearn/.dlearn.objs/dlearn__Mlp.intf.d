lib/dlearn/mlp.mli: Icoe_util
