lib/dlearn/lbann.ml: Float Hwsim
