lib/dlearn/modelparallel.mli: Hwsim Mlp
