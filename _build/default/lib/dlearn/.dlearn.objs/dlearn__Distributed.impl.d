lib/dlearn/distributed.ml: Array Float Hwsim Icoe_util Linalg Mlp Queue
