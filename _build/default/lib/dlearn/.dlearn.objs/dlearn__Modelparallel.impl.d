lib/dlearn/modelparallel.ml: Array Hwsim Mlp
