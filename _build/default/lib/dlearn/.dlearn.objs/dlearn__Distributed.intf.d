lib/dlearn/distributed.mli: Icoe_util
