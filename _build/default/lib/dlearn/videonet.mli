(** The Table 3 study: three-stream video action recognition as a
    controlled ensemble experiment. Each stream is a feature generator
    with controlled per-class informativeness (a blind stream aliases the
    class to a neighbour — confidently wrong); stream classifiers and
    combiners are trained for real. Fusion beats every single stream, and
    on the harder set the learned combiners clearly beat averaging (the
    HMDB51 signature). *)

type difficulty = Easy  (** UCF101-like *) | Hard  (** HMDB51-like *)

type dataset = {
  streams : float array array array;  (** stream -> sample -> features *)
  labels : int array;
  classes : int;
  dim : int;
}

val n_streams : int

val make :
  rng:Icoe_util.Rng.t -> ?classes:int -> ?dim:int -> ?n:int -> ?noise:float ->
  ?label_noise:float -> difficulty -> dataset

val split : frac:float -> dataset -> dataset * dataset

type combiner =
  | Single of int
  | Simple_average
  | Weighted_average
  | Logistic_regression  (** stacking on log-probabilities *)
  | Shallow_nn
  | End_to_end  (** single model on concatenated raw features (I3D row) *)

val combiner_name : combiner -> string

type study

val prepare : ?noise:float -> ?label_noise:float -> rng:Icoe_util.Rng.t ->
  difficulty -> study
(** Generate data and train the three stream classifiers. *)

val evaluate : rng:Icoe_util.Rng.t -> study -> combiner -> float
(** Test accuracy of a combination approach (trains stacking models
    where needed). *)

val table3 : ?noise:float -> ?label_noise:float -> rng:Icoe_util.Rng.t ->
  difficulty -> (combiner * float) list
(** The full Table 3 grid for one dataset. *)
