(** The VBL split-step algorithm (Sec 4.11 / [24]): each z-step applies

    1. the Fresnel diffraction operator in Fourier space
       (two FFTs + a quadratic spectral phase), and
    2. pointwise operators in real space: amplifier gain with saturation
       and phase screens (aberrations, defects).

    The FFT part is the cuFFT call; the pointwise part is the RAJA
    triply-nested loop of the paper. *)

(** Apply a phase screen phi(x, y) (radians) to the field. *)
let phase_screen (b : Beam.t) phi =
  for j = 0 to b.Beam.n - 1 do
    for i = 0 to b.Beam.n - 1 do
      let x, y = Beam.coords b i j in
      let p = phi ~x ~y in
      let c = cos p and s = sin p in
      let k = 2 * ((j * b.Beam.n) + i) in
      let re = b.Beam.field.(k) and im = b.Beam.field.(k + 1) in
      b.Beam.field.(k) <- (re *. c) -. (im *. s);
      b.Beam.field.(k + 1) <- (re *. s) +. (im *. c)
    done
  done

(** Two localized Gaussian phase bumps of size [defect_size] (the Fig 9
    "150 micron phase defects"), placed in the lower-left quadrant. *)
let defect_screen ~defect_size ~depth (b : Beam.t) =
  let w = b.Beam.width in
  let centers = [ (-0.2 *. w, -0.2 *. w); (-0.28 *. w, -0.13 *. w) ] in
  phase_screen b (fun ~x ~y ->
      List.fold_left
        (fun acc (cx, cy) ->
          let r2 = ((x -. cx) ** 2.0) +. ((y -. cy) ** 2.0) in
          acc +. (depth *. exp (-.r2 /. (defect_size *. defect_size))))
        0.0 centers)

(** Fresnel propagation over distance [dz] via the spectral method. *)
let fresnel_step ?(tiled = true) (b : Beam.t) ~dz =
  let n = b.Beam.n in
  let k0 = 2.0 *. Float.pi /. b.Beam.wavelength in
  Fftlib.Fft.transform_2d ~tiled ~n b.Beam.field;
  let dkx = 2.0 *. Float.pi /. b.Beam.width in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      (* FFT frequencies in standard wrap-around order *)
      let fi = if i <= n / 2 then i else i - n in
      let fj = if j <= n / 2 then j else j - n in
      let kx = float_of_int fi *. dkx and ky = float_of_int fj *. dkx in
      let phase = -.dz *. ((kx *. kx) +. (ky *. ky)) /. (2.0 *. k0) in
      let c = cos phase and s = sin phase in
      let k = 2 * ((j * n) + i) in
      let re = b.Beam.field.(k) and im = b.Beam.field.(k + 1) in
      b.Beam.field.(k) <- (re *. c) -. (im *. s);
      b.Beam.field.(k + 1) <- (re *. s) +. (im *. c)
    done
  done;
  Fftlib.Fft.transform_2d ~inverse:true ~tiled ~n b.Beam.field

(** Saturated-gain amplifier slab: field gain g0/(1 + F/Fsat) per metre
    over [dz]. *)
let amplifier_step (b : Beam.t) ~g0 ~fsat ~dz =
  let n = b.Beam.n in
  for k = 0 to (n * n) - 1 do
    let re = b.Beam.field.(2 * k) and im = b.Beam.field.((2 * k) + 1) in
    let f = (re *. re) +. (im *. im) in
    let g = exp (g0 *. dz /. (2.0 *. (1.0 +. (f /. fsat)))) in
    b.Beam.field.(2 * k) <- re *. g;
    b.Beam.field.((2 * k) + 1) <- im *. g
  done

(** Propagate [distance] metres in [steps] split steps, with optional gain. *)
let run ?(tiled = true) ?gain (b : Beam.t) ~distance ~steps =
  let dz = distance /. float_of_int steps in
  for _ = 1 to steps do
    fresnel_step ~tiled b ~dz;
    match gain with
    | Some (g0, fsat) -> amplifier_step b ~g0 ~fsat ~dz
    | None -> ()
  done

(** Per-split-step simulated time on a device: 4 n-point-row FFT passes
    (2 forward + 2 inverse batched over n rows), 2 transposes, and the
    pointwise spectral phase. The transpose variant is the Sec 4.11
    RAJA-vs-CUDA lever. *)
let step_time ~n ~(device : Hwsim.Device.t) ~transpose_variant =
  let fft_pass = Hwsim.Kernel.scale (float_of_int (2 * n)) (Fftlib.Fft.fft_work n) in
  let eff = Hwsim.Roofline.eff ~compute:0.5 ~bandwidth:0.7 () in
  let t_fft = 2.0 *. Hwsim.Roofline.time ~eff device fft_pass in
  let t_tr = 2.0 *. Fftlib.Fft.transpose_time ~n ~device transpose_variant in
  let pointwise =
    Hwsim.Kernel.make ~name:"spectral-phase"
      ~flops:(float_of_int (n * n) *. 20.0)
      ~bytes:(float_of_int (n * n) *. 32.0)
      ()
  in
  let t_pw = Hwsim.Roofline.time ~eff device pointwise in
  t_fft +. t_tr +. t_pw
