(** VBL beam state: an n x n complex transverse electric-field slice on a
    square aperture, stored interleaved (re, im). *)

type t = {
  n : int;  (** grid points per side (a power of two, for the FFT) *)
  width : float;  (** physical aperture width, metres *)
  wavelength : float;
  field : float array;  (** 2 n^2 interleaved complex values *)
}

val create : ?wavelength:float -> n:int -> width:float -> unit -> t
(** Default wavelength 1053 nm (the NIF 1-omega line). *)

val dx : t -> float

val coords : t -> int -> int -> float * float
(** Physical (x, y) of a grid point, centred on the aperture. *)

val set_field : t -> (x:float -> y:float -> float * float) -> unit

val flat_top : ?fill:float -> t -> unit
(** Super-Gaussian flat-top filling [fill] of the aperture (default 0.7). *)

val gaussian : w0:float -> t -> unit

val fluence : t -> float array
(** |E|^2 map, row-major n x n. *)

val total_power : t -> float

val center_contrast : ?frac:float -> t -> float
(** Fluence modulation (max - min)/mean over the central [frac] of the
    aperture — the Fig 9 ripple metric. *)
