lib/vbl/beam.mli:
