lib/vbl/propagate.ml: Array Beam Fftlib Float Hwsim List
