lib/vbl/beam.ml: Array Fftlib Float Icoe_util
