lib/vbl/propagate.mli: Beam Hwsim
