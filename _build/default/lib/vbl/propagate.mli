(** The VBL split-step algorithm (Sec 4.11): each z-step applies the
    Fresnel diffraction operator in Fourier space (two FFTs + a quadratic
    spectral phase) and pointwise real-space operators (saturated
    amplifier gain, phase screens). The FFT part is the cuFFT call; the
    pointwise part is the RAJA triply-nested loop of the paper. *)

val phase_screen : Beam.t -> (x:float -> y:float -> float) -> unit
(** Multiply the field by exp(i phi(x, y)). *)

val defect_screen : defect_size:float -> depth:float -> Beam.t -> unit
(** Two localized Gaussian phase bumps (the Fig 9 "150 micron phase
    defects"), in the lower-left quadrant. *)

val fresnel_step : ?tiled:bool -> Beam.t -> dz:float -> unit
(** Free-space propagation over [dz] by the spectral method (unitary). *)

val amplifier_step : Beam.t -> g0:float -> fsat:float -> dz:float -> unit
(** Saturated-gain slab: field gain g0 / (1 + F/Fsat) per metre. *)

val run : ?tiled:bool -> ?gain:float * float -> Beam.t -> distance:float ->
  steps:int -> unit
(** Propagate [distance] metres in [steps] split steps; [gain] is
    (g0, fsat) for an amplifying medium. *)

val step_time :
  n:int -> device:Hwsim.Device.t -> transpose_variant:[ `Naive | `Tiled ] ->
  float
(** Simulated seconds per split step; the transpose variant is the
    Sec 4.11 RAJA-vs-CUDA lever. *)
