(** Index boxes: the SAMRAI unit of structured-mesh bookkeeping. *)

type t = { ilo : int; jlo : int; ihi : int; jhi : int }

val make : ilo:int -> jlo:int -> ihi:int -> jhi:int -> t
(** Requires non-inverted extents. *)

val ni : t -> int
val nj : t -> int
val size : t -> int

val contains : t -> i:int -> j:int -> bool

val intersect : t -> t -> t option

val grow : t -> int -> t
(** Grow by n cells in every direction (ghost region). *)

val refine : t -> int -> t
(** Refine indices by a ratio (the fine box covers the same region). *)

val coarsen : t -> int -> t

val split : t -> int -> t list
(** At most n roughly equal sub-boxes along the long axis; the pieces
    partition the box exactly. *)

val pp : Format.formatter -> t -> unit
