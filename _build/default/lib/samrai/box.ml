(** Index boxes: the SAMRAI unit of structured-mesh bookkeeping. *)

type t = { ilo : int; jlo : int; ihi : int; jhi : int }

let make ~ilo ~jlo ~ihi ~jhi =
  assert (ihi >= ilo && jhi >= jlo);
  { ilo; jlo; ihi; jhi }

let ni t = t.ihi - t.ilo + 1
let nj t = t.jhi - t.jlo + 1
let size t = ni t * nj t

let contains t ~i ~j = i >= t.ilo && i <= t.ihi && j >= t.jlo && j <= t.jhi

let intersect a b =
  let ilo = max a.ilo b.ilo and jlo = max a.jlo b.jlo in
  let ihi = min a.ihi b.ihi and jhi = min a.jhi b.jhi in
  if ihi >= ilo && jhi >= jlo then Some { ilo; jlo; ihi; jhi } else None

(** Grow by [n] cells in every direction (ghost region). *)
let grow t n = { ilo = t.ilo - n; jlo = t.jlo - n; ihi = t.ihi + n; jhi = t.jhi + n }

(** Refine indices by [ratio] (fine covers the same physical region). *)
let refine t ratio =
  {
    ilo = t.ilo * ratio;
    jlo = t.jlo * ratio;
    ihi = ((t.ihi + 1) * ratio) - 1;
    jhi = ((t.jhi + 1) * ratio) - 1;
  }

let coarsen t ratio =
  {
    ilo = (if t.ilo >= 0 then t.ilo / ratio else -(((-t.ilo) + ratio - 1) / ratio));
    jlo = (if t.jlo >= 0 then t.jlo / ratio else -(((-t.jlo) + ratio - 1) / ratio));
    ihi = (if t.ihi >= 0 then t.ihi / ratio else -(((-t.ihi) + ratio - 1) / ratio));
    jhi = (if t.jhi >= 0 then t.jhi / ratio else -(((-t.jhi) + ratio - 1) / ratio));
  }

(** Split into at most [n] roughly equal sub-boxes along the long axis. *)
let split t n =
  if n <= 1 then [ t ]
  else if ni t >= nj t then
    let w = ni t in
    let step = max 1 (w / n) in
    let rec go lo acc =
      if lo > t.ihi then List.rev acc
      else
        let hi = min t.ihi (lo + step - 1) in
        let hi = if t.ihi - hi < step / 2 then t.ihi else hi in
        go (hi + 1) ({ t with ilo = lo; ihi = hi } :: acc)
    in
    go t.ilo []
  else
    let w = nj t in
    let step = max 1 (w / n) in
    let rec go lo acc =
      if lo > t.jhi then List.rev acc
      else
        let hi = min t.jhi (lo + step - 1) in
        let hi = if t.jhi - hi < step / 2 then t.jhi else hi in
        go (hi + 1) ({ t with jlo = lo; jhi = hi } :: acc)
    in
    go t.jlo []

let pp ppf t = Fmt.pf ppf "[%d..%d]x[%d..%d]" t.ilo t.ihi t.jlo t.jhi
