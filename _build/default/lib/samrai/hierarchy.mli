(** Patch hierarchy: levels of refined patch sets over a base domain.
    Level 0 tiles the whole domain; finer levels cover subregions at
    higher resolution. Patch data goes through the Umpire-style pool, so
    regridding costs show on the simulated clock. *)

type level = { patches : Patch.t list; ratio : int  (** vs level 0 *) }

type t = {
  domain : Box.t;
  mutable levels : level array;
  pool : Prog.Pool.t;
  clock : Hwsim.Clock.t;
  ghosts : int;
  fields : string list;
}

val create : ?ghosts:int -> ?patches_per_level:int -> fields:string list -> Box.t -> t

val num_levels : t -> int
val level : t -> int -> level
val level_cells : level -> int
val total_cells : t -> int

val add_refined_level : ?patches:int -> t -> region:Box.t -> ratio:int -> unit
(** Add a level covering [region] (level-0 coordinates) at [ratio] x the
    current finest resolution. *)

val fill_level_ghosts : t -> int -> string -> unit
(** Sibling ghost exchange plus reflecting physical boundaries. *)

val coarsen_field : t -> fine_idx:int -> coarse_idx:int -> string -> unit
(** Conservative average of fine data onto underlying coarse cells. *)

val tag_cells : t -> lvl_idx:int -> name:string -> threshold:float -> (int * int) list
(** Gradient-based refinement flags on a level (level coordinates). *)

val tag_bounding_box : t -> lvl_idx:int -> ?pad:int -> (int * int) list -> Box.t option

val regrid_on_gradient :
  ?ratio:int -> ?patches:int -> ?pad:int -> t -> name:string ->
  threshold:float -> bool
(** Tag steep gradients on the finest level and add a refined level over
    their bounding box; returns whether a level was created. *)
