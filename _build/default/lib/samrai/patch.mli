(** Patches: a box plus named cell-centred data arrays with ghost cells,
    allocated from an Umpire-style pool so repeated regrid/alloc cycles
    are amortized (the Sec 4.10.5 performance ingredient). *)

type t = {
  box : Box.t;  (** interior cells *)
  ghosts : int;
  data : (string, float array) Hashtbl.t;
  pool : Prog.Pool.t option;
  clock : Hwsim.Clock.t option;
}

val gbox : t -> Box.t
(** The ghosted box. *)

val create : ?ghosts:int -> ?pool:Prog.Pool.t -> ?clock:Hwsim.Clock.t -> Box.t -> t

val alloc_field : t -> string -> unit
(** Idempotent; charges the pool when present. *)

val free_field : t -> string -> unit

val field : t -> string -> float array
(** Raises [Invalid_argument] for unknown fields. *)

val index : t -> i:int -> j:int -> int
val get : t -> string -> i:int -> j:int -> float
val set : t -> string -> i:int -> j:int -> float -> unit

val iter_interior : t -> (i:int -> j:int -> unit) -> unit

val fill_ghosts_from : t -> string -> src:t -> unit
(** Copy overlapping interior values of a sibling into this patch's
    ghosts. *)

val fill_physical_ghosts : t -> string -> domain:Box.t -> unit
(** Reflecting (zero-gradient) fill on the domain boundary. *)
