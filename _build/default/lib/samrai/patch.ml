(** Patches: a box plus named cell-centered data arrays with ghost cells,
    allocated from an Umpire-style pool so repeated regrid/alloc cycles are
    amortized (the Sec 4.10.5 performance ingredient). *)

type t = {
  box : Box.t;  (** interior cells *)
  ghosts : int;
  data : (string, float array) Hashtbl.t;
  pool : Prog.Pool.t option;
  clock : Hwsim.Clock.t option;
}

let gbox t = Box.grow t.box t.ghosts

let create ?(ghosts = 2) ?pool ?clock box =
  { box; ghosts; data = Hashtbl.create 8; pool; clock }

let alloc_field t name =
  if not (Hashtbl.mem t.data name) then begin
    let n = Box.size (gbox t) in
    (match (t.pool, t.clock) with
    | Some p, Some c -> Prog.Pool.alloc p ~bytes:(8.0 *. float_of_int n) ~clock:c
    | _ -> ());
    Hashtbl.add t.data name (Array.make n 0.0)
  end

let free_field t name =
  match Hashtbl.find_opt t.data name with
  | None -> ()
  | Some a ->
      (match t.pool with
      | Some p -> Prog.Pool.free p ~bytes:(8.0 *. float_of_int (Array.length a))
      | None -> ());
      Hashtbl.remove t.data name

let field t name =
  match Hashtbl.find_opt t.data name with
  | Some a -> a
  | None -> invalid_arg ("Patch.field: no field " ^ name)

(* flat index of (i,j) in the ghosted array *)
let index t ~i ~j =
  let g = gbox t in
  assert (Box.contains g ~i ~j);
  i - g.Box.ilo + (Box.ni g * (j - g.Box.jlo))

let get t name ~i ~j = (field t name).(index t ~i ~j)
let set t name ~i ~j v = (field t name).(index t ~i ~j) <- v

(** Iterate over interior cells. *)
let iter_interior t f =
  for j = t.box.Box.jlo to t.box.Box.jhi do
    for i = t.box.Box.ilo to t.box.Box.ihi do
      f ~i ~j
    done
  done

(** Fill this patch's ghost cells of [name] from a neighbour patch's
    interior where they overlap. *)
let fill_ghosts_from t name ~(src : t) =
  match Box.intersect (gbox t) src.box with
  | None -> ()
  | Some ov ->
      for j = ov.Box.jlo to ov.Box.jhi do
        for i = ov.Box.ilo to ov.Box.ihi do
          if not (Box.contains t.box ~i ~j) then
            set t name ~i ~j (get src name ~i ~j)
        done
      done

(** Reflecting (zero-gradient) physical boundary fill on the domain edge. *)
let fill_physical_ghosts t name ~domain =
  let g = gbox t in
  for j = g.Box.jlo to g.Box.jhi do
    for i = g.Box.ilo to g.Box.ihi do
      if not (Box.contains t.box ~i ~j) && not (Box.contains domain ~i ~j) then begin
        let ic = min (max i domain.Box.ilo) domain.Box.ihi in
        let jc = min (max j domain.Box.jlo) domain.Box.jhi in
        if Box.contains t.box ~i:ic ~j:jc then
          set t name ~i ~j (get t name ~i:ic ~j:jc)
      end
    done
  done
