(** Patch hierarchy: levels of refined patch sets over a base domain.

    Level 0 tiles the whole domain; finer levels cover flagged subregions
    at [ratio]x resolution. Regridding reallocates patch data — through the
    pool, so the Umpire amortization shows up in the simulated clock. *)

type level = { patches : Patch.t list; ratio : int  (** vs level 0 *) }

type t = {
  domain : Box.t;  (** level-0 index space *)
  mutable levels : level array;
  pool : Prog.Pool.t;
  clock : Hwsim.Clock.t;
  ghosts : int;
  fields : string list;
}

let create ?(ghosts = 2) ?(patches_per_level = 4) ~fields domain =
  let pool = Prog.Pool.create "samrai" in
  let clock = Hwsim.Clock.create () in
  let boxes = Box.split domain patches_per_level in
  let patches =
    List.map
      (fun b ->
        let p = Patch.create ~ghosts ~pool ~clock b in
        List.iter (Patch.alloc_field p) fields;
        p)
      boxes
  in
  {
    domain;
    levels = [| { patches; ratio = 1 } |];
    pool;
    clock;
    ghosts;
    fields;
  }

let num_levels t = Array.length t.levels
let level t i = t.levels.(i)

(** Total interior cells across a level. *)
let level_cells lvl =
  List.fold_left (fun acc p -> acc + Box.size p.Patch.box) 0 lvl.patches

let total_cells t =
  Array.fold_left (fun acc l -> acc + level_cells l) 0 t.levels

(** Add a refined level covering [region] (level-0 coordinates) at
    [ratio] x the resolution of the current finest level. *)
let add_refined_level ?(patches = 2) t ~region ~ratio =
  let finest = t.levels.(num_levels t - 1) in
  let new_ratio = finest.ratio * ratio in
  let fine_region = Box.refine region new_ratio in
  let boxes = Box.split fine_region patches in
  let ps =
    List.map
      (fun b ->
        let p = Patch.create ~ghosts:t.ghosts ~pool:t.pool ~clock:t.clock b in
        List.iter (Patch.alloc_field p) t.fields;
        p)
      boxes
  in
  t.levels <- Array.append t.levels [| { patches = ps; ratio = new_ratio } |]

(** Exchange ghost data between sibling patches of a level and apply
    reflecting physical boundaries. *)
let fill_level_ghosts t lvl_idx name =
  let lvl = t.levels.(lvl_idx) in
  let domain = Box.refine t.domain lvl.ratio in
  List.iter
    (fun p ->
      List.iter
        (fun src -> if src != p then Patch.fill_ghosts_from p name ~src)
        lvl.patches;
      Patch.fill_physical_ghosts p name ~domain)
    lvl.patches

(** Conservative average of fine-level data onto the underlying coarse
    cells (restriction after a fine-level step). *)
let coarsen_field t ~fine_idx ~coarse_idx name =
  assert (fine_idx > coarse_idx);
  let fine = t.levels.(fine_idx) and coarse = t.levels.(coarse_idx) in
  let r = fine.ratio / coarse.ratio in
  let r2 = float_of_int (r * r) in
  List.iter
    (fun (cp : Patch.t) ->
      List.iter
        (fun (fp : Patch.t) ->
          let fine_in_coarse = Box.coarsen fp.Patch.box r in
          match Box.intersect cp.Patch.box fine_in_coarse with
          | None -> ()
          | Some ov ->
              for j = ov.Box.jlo to ov.Box.jhi do
                for i = ov.Box.ilo to ov.Box.ihi do
                  let s = ref 0.0 in
                  for fj = j * r to (j * r) + r - 1 do
                    for fi = i * r to (i * r) + r - 1 do
                      s := !s +. Patch.get fp name ~i:fi ~j:fj
                    done
                  done;
                  Patch.set cp name ~i ~j (!s /. r2)
                done
              done)
        fine.patches)
    coarse.patches

(** Gradient-based cell tagging: flag interior cells of [lvl_idx] where
    the magnitude of the central-difference gradient of [name] exceeds
    [threshold]. Returns the flagged cells (level coordinates). *)
let tag_cells t ~lvl_idx ~name ~threshold =
  let lvl = t.levels.(lvl_idx) in
  let tags = ref [] in
  List.iter
    (fun (p : Patch.t) ->
      Patch.iter_interior p (fun ~i ~j ->
          let b = p.Patch.box in
          if
            i > b.Box.ilo && i < b.Box.ihi && j > b.Box.jlo && j < b.Box.jhi
          then begin
            let gx = (Patch.get p name ~i:(i + 1) ~j -. Patch.get p name ~i:(i - 1) ~j) /. 2.0 in
            let gy = (Patch.get p name ~i ~j:(j + 1) -. Patch.get p name ~i ~j:(j - 1)) /. 2.0 in
            if sqrt ((gx *. gx) +. (gy *. gy)) > threshold then
              tags := (i, j) :: !tags
          end))
    lvl.patches;
  !tags

(** Bounding box of a tag set, grown by [pad] cells and clipped to the
    level's index space; [None] when nothing is flagged. *)
let tag_bounding_box t ~lvl_idx ?(pad = 2) tags =
  match tags with
  | [] -> None
  | (i0, j0) :: rest ->
      let ilo = ref i0 and ihi = ref i0 and jlo = ref j0 and jhi = ref j0 in
      List.iter
        (fun (i, j) ->
          ilo := min !ilo i;
          ihi := max !ihi i;
          jlo := min !jlo j;
          jhi := max !jhi j)
        rest;
      let lvl = t.levels.(lvl_idx) in
      let dom = Box.refine t.domain lvl.ratio in
      Some
        (Box.make
           ~ilo:(max dom.Box.ilo (!ilo - pad))
           ~jlo:(max dom.Box.jlo (!jlo - pad))
           ~ihi:(min dom.Box.ihi (!ihi + pad))
           ~jhi:(min dom.Box.jhi (!jhi + pad)))

(** Tag-and-regrid: flag steep gradients of [name] on the finest level and
    add a refined level over their bounding box. Returns true when a new
    level was created. The (re)allocation of the new level's patch data
    runs through the Umpire pool, as the paper's SAMRAI port does. *)
let regrid_on_gradient ?(ratio = 2) ?(patches = 2) ?(pad = 2) t ~name
    ~threshold =
  let lvl_idx = num_levels t - 1 in
  let tags = tag_cells t ~lvl_idx ~name ~threshold in
  match tag_bounding_box t ~lvl_idx ~pad tags with
  | None -> false
  | Some fine_box ->
      (* convert from finest-level coordinates back to level-0 space *)
      let lvl = t.levels.(lvl_idx) in
      let region = Box.coarsen fine_box lvl.ratio in
      add_refined_level ~patches t ~region ~ratio;
      true
