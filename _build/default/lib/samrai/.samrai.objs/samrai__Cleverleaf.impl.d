lib/samrai/cleverleaf.ml: Array Box Float Hierarchy Hwsim List Patch
