lib/samrai/patch.mli: Box Hashtbl Hwsim Prog
