lib/samrai/patch.ml: Array Box Hashtbl Hwsim Prog
