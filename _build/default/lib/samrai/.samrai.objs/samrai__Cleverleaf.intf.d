lib/samrai/cleverleaf.mli: Hierarchy Hwsim
