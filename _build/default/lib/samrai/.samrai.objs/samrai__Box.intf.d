lib/samrai/box.mli: Format
