lib/samrai/box.ml: Fmt List
