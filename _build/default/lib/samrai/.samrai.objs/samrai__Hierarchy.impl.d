lib/samrai/hierarchy.ml: Array Box Hwsim List Patch Prog
