lib/samrai/hierarchy.mli: Box Hwsim Patch Prog
