(** CleverLeaf: the 2D compressible-Euler mini-app used to assess the
    SAMRAI port (Table 5). Ideal gas, conservative finite volumes with a
    Rusanov flux on the patch hierarchy's level 0. *)

val gamma_gas : float
val fields : string list

type t = {
  hier : Hierarchy.t;
  dx : float;
  dy : float;
  mutable time : float;
  mutable steps : int;
}

val create : ?patches:int -> nx:int -> ny:int -> lx:float -> ly:float -> unit -> t

val pressure : rho:float -> mx:float -> my:float -> e:float -> float

val init : t -> (x:float -> y:float -> float * float * float * float) -> unit
(** Initialize from primitive variables (rho, u, v, p) at cell centres. *)

val max_wave_speed : t -> float

val step : ?cfl:float -> t -> float
(** One explicit step; returns dt. *)

val run : ?cfl:float -> ?max_steps:int -> t -> float -> unit
(** Advance to a physical time. *)

val totals : t -> float * float * float * float
(** (mass, x-momentum, y-momentum, energy) — conserved to rounding. *)

val density_slice : t -> float array
(** Density along the mid-height line (Sod validation). *)

val step_work : cells:int -> Hwsim.Kernel.t

val table5_times : cells:int -> steps:int -> (float * float) * (float * float)
(** Table 5 configurations: ((full-node cpu, gpu), (single P9, single
    V100)) simulated seconds; calibrated per the module comments. *)
