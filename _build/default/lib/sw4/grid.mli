(** SW4 computational grid: 2D plane-strain elastic medium. Fields are
    flat row-major arrays (i + nx*j); the material model (rho, lambda, mu)
    varies per point, which is what lets the Hayward-like layered-basin
    scenario exist. *)

type t = {
  nx : int;
  ny : int;
  h : float;  (** grid spacing, metres *)
  rho : float array;
  lambda : float array;
  mu : float array;
}

val idx : t -> int -> int -> int

val create : nx:int -> ny:int -> h:float -> t
(** Requires at least 9 points per side (4th-order stencils + margins). *)

val set_material : t -> (x:float -> y:float -> float * float * float) -> unit
(** Material from physical coordinates: (rho, vp, vs). *)

val homogeneous : t -> rho:float -> vp:float -> vs:float -> unit

val p_speed : t -> int -> int -> float
val s_speed : t -> int -> int -> float
val max_p_speed : t -> float

val stable_dt : ?cfl:float -> t -> float
(** CFL-stable timestep for the 4th-order scheme (default CFL 0.5). *)
