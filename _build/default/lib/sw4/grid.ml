(** SW4 computational grid: 2D plane-strain elastic medium.

    Fields are flat row-major arrays (i + nx*j). The material model (rho,
    lambda, mu) varies per point, which is what lets the Hayward-like
    layered-basin scenario exist. *)

type t = {
  nx : int;
  ny : int;
  h : float;  (** grid spacing, metres *)
  rho : float array;  (** density *)
  lambda : float array;  (** Lame lambda *)
  mu : float array;  (** shear modulus *)
}

let idx t i j = i + (t.nx * j)

let create ~nx ~ny ~h =
  assert (nx >= 9 && ny >= 9);
  let n = nx * ny in
  {
    nx;
    ny;
    h;
    rho = Array.make n 1000.0;
    lambda = Array.make n 1e9;
    mu = Array.make n 1e9;
  }

(** Set material from a function of physical coordinates. *)
let set_material t f =
  for j = 0 to t.ny - 1 do
    for i = 0 to t.nx - 1 do
      let x = float_of_int i *. t.h and y = float_of_int j *. t.h in
      let rho, vp, vs = f ~x ~y in
      let mu = rho *. vs *. vs in
      let lambda = (rho *. vp *. vp) -. (2.0 *. mu) in
      assert (lambda > 0.0 || vp *. vp >= 2.0 *. vs *. vs);
      t.rho.(idx t i j) <- rho;
      t.mu.(idx t i j) <- mu;
      t.lambda.(idx t i j) <- max lambda 0.0
    done
  done

(** Homogeneous material helper. *)
let homogeneous t ~rho ~vp ~vs = set_material t (fun ~x:_ ~y:_ -> (rho, vp, vs))

let p_speed t i j =
  let k = idx t i j in
  sqrt ((t.lambda.(k) +. (2.0 *. t.mu.(k))) /. t.rho.(k))

let s_speed t i j =
  let k = idx t i j in
  sqrt (t.mu.(k) /. t.rho.(k))

let max_p_speed t =
  let m = ref 0.0 in
  for j = 0 to t.ny - 1 do
    for i = 0 to t.nx - 1 do
      m := max !m (p_speed t i j)
    done
  done;
  !m

(** CFL-stable timestep for the 4th-order scheme. *)
let stable_dt ?(cfl = 0.5) t = cfl *. t.h /. max_p_speed t
