lib/sw4/elastic3d.mli: Hwsim
