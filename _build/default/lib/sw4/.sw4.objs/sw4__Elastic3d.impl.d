lib/sw4/elastic3d.ml: Array Hwsim
