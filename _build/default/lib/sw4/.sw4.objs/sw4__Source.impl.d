lib/sw4/source.ml: Array Float Grid
