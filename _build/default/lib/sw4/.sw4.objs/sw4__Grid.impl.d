lib/sw4/grid.ml: Array
