lib/sw4/solver.mli: Elastic Grid Source
