lib/sw4/scenario.mli: Grid Hwsim Prog
