lib/sw4/scenario.ml: Array Elastic Grid Hwsim Icoe_util Prog Solver Source
