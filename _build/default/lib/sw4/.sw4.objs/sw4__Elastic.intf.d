lib/sw4/elastic.mli: Grid Hwsim
