lib/sw4/elastic.ml: Array Grid Hwsim
