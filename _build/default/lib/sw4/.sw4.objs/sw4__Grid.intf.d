lib/sw4/grid.mli:
