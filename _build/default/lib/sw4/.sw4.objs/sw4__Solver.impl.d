lib/sw4/solver.ml: Array Elastic Grid List Source
