lib/sw4/source.mli: Grid
