(** Full 3D elastic-wave propagation — the dimensionality of the real SW4.

    Displacement formulation with 4th-order central differences:

        rho u_tt = div sigma,
        sigma = lambda tr(eps) I + 2 mu eps,   eps = (grad u + grad u^T)/2

    with three displacement components and six stress components. The 2D
    plane-strain solver in {!Elastic} remains the cheap workhorse for
    scenarios and tests; this module is the production-shaped kernel whose
    per-point work justifies the campaign model in {!Scenario}. *)

type grid = {
  nx : int;
  ny : int;
  nz : int;
  h : float;
  rho : float array;
  lambda : float array;
  mu : float array;
}

let idx g i j k = i + (g.nx * (j + (g.ny * k)))

let create_grid ~nx ~ny ~nz ~h =
  assert (nx >= 9 && ny >= 9 && nz >= 9);
  let n = nx * ny * nz in
  {
    nx;
    ny;
    nz;
    h;
    rho = Array.make n 1000.0;
    lambda = Array.make n 1e9;
    mu = Array.make n 1e9;
  }

let homogeneous g ~rho ~vp ~vs =
  let mu = rho *. vs *. vs in
  let lambda = (rho *. vp *. vp) -. (2.0 *. mu) in
  assert (lambda >= 0.0);
  Array.fill g.rho 0 (Array.length g.rho) rho;
  Array.fill g.mu 0 (Array.length g.mu) mu;
  Array.fill g.lambda 0 (Array.length g.lambda) lambda

let max_p_speed g =
  let m = ref 0.0 in
  Array.iteri
    (fun i lam ->
      m := max !m (sqrt ((lam +. (2.0 *. g.mu.(i))) /. g.rho.(i))))
    g.lambda;
  !m

let stable_dt ?(cfl = 0.4) g = cfl *. g.h /. max_p_speed g

(* 4th-order first derivatives at (i,j,k) with precomputed strides *)
let d1 g f k stride =
  (8.0 *. (f.(k + stride) -. f.(k - stride))
  -. (f.(k + (2 * stride)) -. f.(k - (2 * stride))))
  /. (12.0 *. g.h)

type state = {
  grid : grid;
  dt : float;
  u : float array array;  (** 3 displacement components *)
  u_prev : float array array;
  a : float array array;  (** accelerations *)
  (* six stress components: xx yy zz xy xz yz *)
  s : float array array;
}

let margin = 4

let create ?(cfl = 0.4) grid =
  let n = grid.nx * grid.ny * grid.nz in
  {
    grid;
    dt = stable_dt ~cfl grid;
    u = Array.init 3 (fun _ -> Array.make n 0.0);
    u_prev = Array.init 3 (fun _ -> Array.make n 0.0);
    a = Array.init 3 (fun _ -> Array.make n 0.0);
    s = Array.init 6 (fun _ -> Array.make n 0.0);
  }

(** Compute stresses then accelerations over the interior. *)
let acceleration st =
  let g = st.grid in
  let sx = 1 and sy = g.nx and sz = g.nx * g.ny in
  let ux = st.u.(0) and uy = st.u.(1) and uz = st.u.(2) in
  (* stress pass *)
  for k = 2 to g.nz - 3 do
    for j = 2 to g.ny - 3 do
      for i = 2 to g.nx - 3 do
        let p = idx g i j k in
        let dux_dx = d1 g ux p sx and dux_dy = d1 g ux p sy and dux_dz = d1 g ux p sz in
        let duy_dx = d1 g uy p sx and duy_dy = d1 g uy p sy and duy_dz = d1 g uy p sz in
        let duz_dx = d1 g uz p sx and duz_dy = d1 g uz p sy and duz_dz = d1 g uz p sz in
        let lam = g.lambda.(p) and mu = g.mu.(p) in
        let div = dux_dx +. duy_dy +. duz_dz in
        st.s.(0).(p) <- (lam *. div) +. (2.0 *. mu *. dux_dx);
        st.s.(1).(p) <- (lam *. div) +. (2.0 *. mu *. duy_dy);
        st.s.(2).(p) <- (lam *. div) +. (2.0 *. mu *. duz_dz);
        st.s.(3).(p) <- mu *. (dux_dy +. duy_dx);
        st.s.(4).(p) <- mu *. (dux_dz +. duz_dx);
        st.s.(5).(p) <- mu *. (duy_dz +. duz_dy)
      done
    done
  done;
  (* divergence pass *)
  for k = margin to g.nz - 1 - margin do
    for j = margin to g.ny - 1 - margin do
      for i = margin to g.nx - 1 - margin do
        let p = idx g i j k in
        let inv_rho = 1.0 /. g.rho.(p) in
        st.a.(0).(p) <-
          (d1 g st.s.(0) p sx +. d1 g st.s.(3) p sy +. d1 g st.s.(4) p sz)
          *. inv_rho;
        st.a.(1).(p) <-
          (d1 g st.s.(3) p sx +. d1 g st.s.(1) p sy +. d1 g st.s.(5) p sz)
          *. inv_rho;
        st.a.(2).(p) <-
          (d1 g st.s.(4) p sx +. d1 g st.s.(5) p sy +. d1 g st.s.(2) p sz)
          *. inv_rho
      done
    done
  done

(** One leapfrog step with an optional body force applied at one point. *)
let step ?force st ~time =
  acceleration st;
  (match force with
  | Some (i, j, k, fx, fy, fz, stf) ->
      let p = idx st.grid i j k in
      let amp = stf time /. st.grid.rho.(p) in
      st.a.(0).(p) <- st.a.(0).(p) +. (fx *. amp);
      st.a.(1).(p) <- st.a.(1).(p) +. (fy *. amp);
      st.a.(2).(p) <- st.a.(2).(p) +. (fz *. amp)
  | None -> ());
  let g = st.grid in
  let dt2 = st.dt *. st.dt in
  for c = 0 to 2 do
    let u = st.u.(c) and up = st.u_prev.(c) and a = st.a.(c) in
    for k = margin to g.nz - 1 - margin do
      for j = margin to g.ny - 1 - margin do
        for i = margin to g.nx - 1 - margin do
          let p = idx g i j k in
          let unew = (2.0 *. u.(p)) -. up.(p) +. (dt2 *. a.(p)) in
          up.(p) <- u.(p);
          u.(p) <- unew
        done
      done
    done
  done

(** Kinetic-energy proxy for stability checks. *)
let energy_proxy st =
  let g = st.grid in
  let e = ref 0.0 in
  for c = 0 to 2 do
    Array.iteri
      (fun p u ->
        let v = (u -. st.u_prev.(c).(p)) /. st.dt in
        e := !e +. (0.5 *. g.rho.(p) *. v *. v))
      st.u.(c)
  done;
  !e

(** Flop/byte volume of one 3D acceleration evaluation: 9 + 18 stencil
    derivatives of 7 flops each plus combines, over ~n points — the
    production-kernel density the campaign model prices. *)
let work g =
  let n = float_of_int (g.nx * g.ny * g.nz) in
  Hwsim.Kernel.make ~name:"sw4-rhs-3d" ~launches:2 ~flops:(n *. 260.0)
    ~bytes:(n *. 8.0 *. 40.0) ()
