(** The 2D plane-strain elastic-wave spatial operator: 4th-order central
    differences on the displacement formulation — the sw4lite kernel
    shape: wide stencils, bandwidth-heavy, the paper's shared-memory
    optimization target. *)

val d1x : Grid.t -> float array -> int -> int -> float
(** 4th-order first derivative along x at (i, j); needs a 2-point halo. *)

val d1y : Grid.t -> float array -> int -> int -> float

type scratch = { sxx : float array; syy : float array; sxy : float array }

val make_scratch : Grid.t -> scratch

val margin : int
(** Cells near the boundary held fixed (the wide stencil can't reach). *)

val acceleration :
  Grid.t -> scratch -> ux:float array -> uy:float array -> ax:float array ->
  ay:float array -> unit
(** Stress pass then divergence pass; writes the interior beyond
    [margin]. *)

val work : Grid.t -> Hwsim.Kernel.t
(** Flop/byte volume of one full-grid evaluation. *)
