(** The Sec 4.6 performance comparison: ddcMD vs GROMACS on a Martini
    membrane patch.

    ddcMD moved the entire MD loop into 46 double-precision GPU kernels
    with no per-step host traffic; GROMACS (single precision, 8 kernels)
    load-balances bonded/integration work onto the CPU and pays per-step
    transfers. When the CPUs are busy (MuMMI), GROMACS' CPU share stalls
    and the gap widens to ~2.3x. *)

type scenario = One_gpu | Four_gpu | Mummi

val scenario_name : scenario -> string

val flops_per_particle : float
(** Calibrated per-particle DP flop volume of one full ddcMD step, pinned
    to the paper's 2.31 ms/step at the MuMMI membrane-patch size. *)

val step_times : ?particles:int -> scenario -> float * float
(** (ddcmd_seconds, gromacs_seconds) per MD step. *)

val ddcmd_peak_fraction : unit -> float
(** Fraction of V100 DP peak the calibrated step achieves (paper: >30%). *)
