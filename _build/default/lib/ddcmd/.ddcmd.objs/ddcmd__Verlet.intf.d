lib/ddcmd/verlet.mli: Particles
