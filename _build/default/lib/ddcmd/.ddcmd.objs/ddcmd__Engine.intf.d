lib/ddcmd/engine.mli: Bonded Icoe_util Particles Potential
