lib/ddcmd/perf.ml: Hwsim
