lib/ddcmd/bonded.ml: Array List Particles
