lib/ddcmd/particles.ml: Array Float Icoe_util
