lib/ddcmd/potential.mli:
