lib/ddcmd/bonded.mli: Particles
