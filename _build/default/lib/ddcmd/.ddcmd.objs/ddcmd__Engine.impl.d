lib/ddcmd/engine.ml: Array Bonded Cells Float Icoe_util Linalg List Particles Potential
