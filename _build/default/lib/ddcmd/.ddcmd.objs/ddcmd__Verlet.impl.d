lib/ddcmd/verlet.ml: Array Cells Particles
