lib/ddcmd/particles.mli: Icoe_util
