lib/ddcmd/perf.mli:
