lib/ddcmd/potential.ml: Array
