lib/ddcmd/cells.ml: Array Float List Particles
