lib/ddcmd/cells.mli: Particles
