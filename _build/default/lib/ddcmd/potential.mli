(** The generic pair-processing infrastructure (Sec 4.6): "a templatized
    generic pair processing infrastructure that can be used to efficiently
    implement a diverse set of potential forms". A potential is a record
    of closures over (species_i, species_j, r^2); the force loop is
    written once, any functional form plugs in. *)

type t = {
  name : string;
  cutoff : float;
  eval : si:int -> sj:int -> r2:float -> float * float;
      (** (energy, f_over_r): the force on i is f_over_r * (r_i - r_j) *)
}

val lennard_jones :
  ?epsilon:float -> ?sigma:float -> ?cutoff:float -> unit -> t
(** 12-6 LJ, energy shifted to zero at the cutoff (continuous). The
    cutoff is in units of sigma. *)

val exp6 :
  ?a:float -> ?rho:float -> ?c:float -> ?cutoff:float -> ?inner:float ->
  unit -> t
(** Buckingham exp-6 with the standard inner-cutoff guard against the
    r^-6 catastrophe. *)

val martini :
  epsilon:float array array -> sigma:float array array -> ?cutoff:float ->
  unit -> t
(** Coarse-grained LJ with per-species-pair parameters (the Martini-style
    force field the MuMMI micro model uses). *)

val soft_sphere : ?epsilon:float -> ?sigma:float -> unit -> t
(** Purely repulsive (fast smoke tests). *)
