(** The generic pair-processing infrastructure (Sec 4.6): "a templatized
    generic pair processing infrastructure that can be used to efficiently
    implement a diverse set of potential forms".

    A potential is a record of closures over (species_i, species_j, r^2):
    the force loop is written once, any functional form plugs in. Energies
    are shifted to zero at the cutoff so they are continuous. *)

type t = {
  name : string;
  cutoff : float;
  (* (energy, f_over_r): force vector on i is f_over_r * (ri - rj) *)
  eval : si:int -> sj:int -> r2:float -> float * float;
}

(** Lennard-Jones 12-6 with energy shifted to 0 at the cutoff. *)
let lennard_jones ?(epsilon = 1.0) ?(sigma = 1.0) ?(cutoff = 2.5) () =
  let c2 = cutoff *. cutoff *. sigma *. sigma in
  let shift =
    let sr6 = (sigma /. (cutoff *. sigma)) ** 6.0 in
    4.0 *. epsilon *. ((sr6 *. sr6) -. sr6)
  in
  {
    name = "lj";
    cutoff = cutoff *. sigma;
    eval =
      (fun ~si:_ ~sj:_ ~r2 ->
        if r2 >= c2 then (0.0, 0.0)
        else
          let inv_r2 = sigma *. sigma /. r2 in
          let sr6 = inv_r2 ** 3.0 in
          let sr12 = sr6 *. sr6 in
          let e = (4.0 *. epsilon *. (sr12 -. sr6)) -. shift in
          let f_over_r = 24.0 *. epsilon *. ((2.0 *. sr12) -. sr6) /. r2 in
          (e, f_over_r));
  }

(** Buckingham exp-6: A exp(-r/rho) - C / r^6. Below [inner] the r^-6 term
    unphysically diverges (the exp-6 catastrophe), so the force switches to
    a stiff constant repulsion — the standard inner-cutoff guard. *)
let exp6 ?(a = 1000.0) ?(rho = 0.3) ?(c = 1.0) ?(cutoff = 2.5) ?(inner = 0.8) () =
  {
    name = "exp6";
    cutoff;
    eval =
      (fun ~si:_ ~sj:_ ~r2 ->
        if r2 >= cutoff *. cutoff then (0.0, 0.0)
        else if r2 < inner *. inner then
          (* capped core: strong repulsion pushing outward *)
          let r = sqrt (max r2 1e-6) in
          (a, a /. rho /. r)
        else
          let r = sqrt r2 in
          let erep = a *. exp (-.r /. rho) in
          let edisp = c /. (r2 *. r2 *. r2) in
          let e = erep -. edisp in
          let f_over_r = ((erep /. rho) -. (6.0 *. edisp /. r)) /. r in
          (e, f_over_r));
  }

(** Martini-style coarse-grained LJ: per-species-pair epsilon/sigma matrix
    (the community-standard membrane force field the MuMMI micro model
    uses). *)
let martini ~(epsilon : float array array) ~(sigma : float array array)
    ?(cutoff = 1.2) () =
  {
    name = "martini";
    cutoff;
    eval =
      (fun ~si ~sj ~r2 ->
        if r2 >= cutoff *. cutoff then (0.0, 0.0)
        else
          let eps = epsilon.(si).(sj) and sg = sigma.(si).(sj) in
          let inv_r2 = sg *. sg /. r2 in
          let sr6 = inv_r2 ** 3.0 in
          let sr12 = sr6 *. sr6 in
          let e = 4.0 *. eps *. (sr12 -. sr6) in
          let f_over_r = 24.0 *. eps *. ((2.0 *. sr12) -. sr6) /. r2 in
          (e, f_over_r));
  }

(** Purely repulsive soft sphere (for fast smoke tests). *)
let soft_sphere ?(epsilon = 1.0) ?(sigma = 1.0) () =
  {
    name = "soft";
    cutoff = sigma;
    eval =
      (fun ~si:_ ~sj:_ ~r2 ->
        if r2 >= sigma *. sigma then (0.0, 0.0)
        else
          let r = sqrt r2 in
          let overlap = 1.0 -. (r /. sigma) in
          let e = epsilon *. overlap *. overlap in
          let f_over_r = 2.0 *. epsilon *. overlap /. (sigma *. r) in
          (e, f_over_r));
  }
