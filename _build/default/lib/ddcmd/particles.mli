(** Particle store in struct-of-arrays layout with a periodic cubic box
    (the locality layout the ddcMD port converted to). Positions are
    wrapped into [0, box). *)

type t = {
  n : int;
  mutable box : float;
  x : float array;
  y : float array;
  z : float array;
  vx : float array;
  vy : float array;
  vz : float array;
  fx : float array;
  fy : float array;
  fz : float array;
  mass : float array;
  species : int array;
}

val create : n:int -> box:float -> t
(** Requires positive counts and box size. *)

val wrap : t -> float -> float
val wrap_all : t -> unit

val min_image : t -> float -> float
(** Minimum-image displacement component. *)

val dist2 : t -> int -> int -> float
(** Squared minimum-image distance. *)

val lattice_init : t -> unit
(** Cubic-lattice placement (stable non-overlapping start). *)

val thermalize : t -> rng:Icoe_util.Rng.t -> temp:float -> unit
(** Maxwell-Boltzmann velocities (kB = 1), COM drift removed. *)

val kinetic_energy : t -> float
val temperature : t -> float
val total_momentum : t -> float * float * float
val zero_forces : t -> unit
