(** The Sec 4.6 performance comparison: ddcMD vs GROMACS on a Martini
    membrane patch.

    Model structure mirrors the paper's explanation of *why* ddcMD wins:
    ddcMD moved the entire MD loop into 46 double-precision GPU kernels
    with no per-step host traffic; GROMACS (single precision, 8 kernels)
    load-balances bonded/integration work onto the CPU and pays per-step
    position/force transfers. When the CPUs are busy (as in MuMMI, where
    they run the macro model and in-situ analysis), GROMACS' CPU share
    stalls and the gap widens to ~2.3x. *)

type scenario = One_gpu | Four_gpu | Mummi

let scenario_name = function
  | One_gpu -> "1 GPU + 1 CPU"
  | Four_gpu -> "4 GPUs + CPUs"
  | Mummi -> "MuMMI (CPUs busy)"

(* Calibrated per-particle double-precision flop volume of one full ddcMD
   step (nonbonded + bonded + neighbour + constraints + integrator),
   chosen so one V100 lands at the paper's 2.31 ms/step at the MuMMI
   membrane-patch size (~136.5k beads). *)
let flops_per_particle = 68_000.0

let v100_dp = Hwsim.Device.v100.Hwsim.Device.peak_gflops *. 1e9 *. 0.6
let p9_dp = Hwsim.Device.power9.Hwsim.Device.peak_gflops *. 1e9 *. 0.4

(** (ddcmd_s, gromacs_s) per MD step for [particles] beads. *)
let step_times ?(particles = 136_500) scenario =
  let n = float_of_int particles in
  let work_dp = n *. flops_per_particle in
  let launch k = float_of_int k *. Hwsim.Device.v100.Hwsim.Device.launch_overhead_s in
  let xfer =
    (* positions out, forces back, 24 B each way per particle *)
    2.0 *. Hwsim.Link.transfer_time Hwsim.Link.nvlink2 ~bytes:(n *. 24.0)
  in
  (* GROMACS: single precision doubles the GPU rate; ~6.5% of the work
     (bonded + integration + constraints) stays on the CPU *)
  let cpu_frac = 0.065 in
  let gro_gpu work gpus = work *. (1.0 -. cpu_frac) /. (2.0 *. v100_dp) /. gpus in
  let gro_cpu work sockets busy = work *. cpu_frac /. p9_dp /. sockets *. busy in
  match scenario with
  | One_gpu ->
      let ddc = (work_dp /. v100_dp) +. launch 46 in
      let gro =
        max (gro_gpu work_dp 1.0) (gro_cpu work_dp 1.0 1.0) +. xfer +. launch 8
      in
      (ddc, gro)
  | Four_gpu ->
      (* 85% multi-GPU scaling for ddcMD; GROMACS gets both sockets and
         its load balancer shifts part of the bonded work onto the now
         less-loaded GPUs (effective CPU share drops) *)
      let ddc = (work_dp /. v100_dp /. (4.0 *. 0.85)) +. launch 46 in
      let cpu_share = work_dp *. 0.05 /. p9_dp /. 2.0 in
      let gro =
        max (gro_gpu work_dp (4.0 *. 0.85)) cpu_share +. xfer +. launch 8
      in
      (ddc, gro)
  | Mummi ->
      (* the macro model and in-situ analysis occupy the CPUs: GROMACS'
         CPU share runs ~2x slower; ddcMD is unaffected *)
      let ddc = (work_dp /. v100_dp) +. launch 46 in
      let gro =
        max (gro_gpu work_dp 1.0) (gro_cpu work_dp 1.0 2.0) +. xfer +. launch 8
      in
      (ddc, gro)

(** Fraction of V100 double-precision peak that the calibrated ddcMD step
    achieves — the paper reports "over 30% of peak" for the MD app. *)
let ddcmd_peak_fraction () =
  0.6 (* the calibrated compute efficiency of the fused GPU kernels *)
