(** Particle store in struct-of-arrays layout with a periodic cubic box.

    The paper's ddcMD port "converted the array of structs to a struct of
    arrays" for locality; we keep that layout so per-array streaming costs
    are explicit. Positions are wrapped into [0, box). *)

type t = {
  n : int;
  mutable box : float;  (** cubic box edge length *)
  x : float array;
  y : float array;
  z : float array;
  vx : float array;
  vy : float array;
  vz : float array;
  fx : float array;
  fy : float array;
  fz : float array;
  mass : float array;
  species : int array;
}

let create ~n ~box =
  assert (n > 0 && box > 0.0);
  {
    n;
    box;
    x = Array.make n 0.0;
    y = Array.make n 0.0;
    z = Array.make n 0.0;
    vx = Array.make n 0.0;
    vy = Array.make n 0.0;
    vz = Array.make n 0.0;
    fx = Array.make n 0.0;
    fy = Array.make n 0.0;
    fz = Array.make n 0.0;
    mass = Array.make n 1.0;
    species = Array.make n 0;
  }

let wrap t v =
  let b = t.box in
  let w = Float.rem v b in
  if w < 0.0 then w +. b else w

let wrap_all t =
  for i = 0 to t.n - 1 do
    t.x.(i) <- wrap t t.x.(i);
    t.y.(i) <- wrap t t.y.(i);
    t.z.(i) <- wrap t t.z.(i)
  done

(** Minimum-image displacement component. *)
let min_image t d =
  let b = t.box in
  if d > b /. 2.0 then d -. b else if d < -.b /. 2.0 then d +. b else d

(** Squared minimum-image distance between particles i and j. *)
let dist2 t i j =
  let dx = min_image t (t.x.(i) -. t.x.(j)) in
  let dy = min_image t (t.y.(i) -. t.y.(j)) in
  let dz = min_image t (t.z.(i) -. t.z.(j)) in
  (dx *. dx) +. (dy *. dy) +. (dz *. dz)

(** Place particles on a cubic lattice (stable non-overlapping start). *)
let lattice_init t =
  let per_side = int_of_float (Float.ceil (float_of_int t.n ** (1.0 /. 3.0))) in
  let spacing = t.box /. float_of_int per_side in
  for i = 0 to t.n - 1 do
    let ix = i mod per_side in
    let iy = i / per_side mod per_side in
    let iz = i / (per_side * per_side) in
    t.x.(i) <- (float_of_int ix +. 0.5) *. spacing;
    t.y.(i) <- (float_of_int iy +. 0.5) *. spacing;
    t.z.(i) <- (float_of_int iz +. 0.5) *. spacing
  done

(** Maxwell-Boltzmann velocities at temperature [temp] (kB = 1 units),
    with the centre-of-mass drift removed. *)
let thermalize t ~(rng : Icoe_util.Rng.t) ~temp =
  for i = 0 to t.n - 1 do
    let s = sqrt (temp /. t.mass.(i)) in
    t.vx.(i) <- s *. Icoe_util.Rng.gaussian rng;
    t.vy.(i) <- s *. Icoe_util.Rng.gaussian rng;
    t.vz.(i) <- s *. Icoe_util.Rng.gaussian rng
  done;
  (* remove COM drift *)
  let mx = ref 0.0 and my = ref 0.0 and mz = ref 0.0 and mt = ref 0.0 in
  for i = 0 to t.n - 1 do
    mx := !mx +. (t.mass.(i) *. t.vx.(i));
    my := !my +. (t.mass.(i) *. t.vy.(i));
    mz := !mz +. (t.mass.(i) *. t.vz.(i));
    mt := !mt +. t.mass.(i)
  done;
  for i = 0 to t.n - 1 do
    t.vx.(i) <- t.vx.(i) -. (!mx /. !mt);
    t.vy.(i) <- t.vy.(i) -. (!my /. !mt);
    t.vz.(i) <- t.vz.(i) -. (!mz /. !mt)
  done

let kinetic_energy t =
  let e = ref 0.0 in
  for i = 0 to t.n - 1 do
    e :=
      !e
      +. (0.5 *. t.mass.(i)
         *. ((t.vx.(i) ** 2.0) +. (t.vy.(i) ** 2.0) +. (t.vz.(i) ** 2.0)))
  done;
  !e

(** Instantaneous temperature (kB = 1): 2 KE / (3 N). *)
let temperature t = 2.0 *. kinetic_energy t /. (3.0 *. float_of_int t.n)

let total_momentum t =
  let mx = ref 0.0 and my = ref 0.0 and mz = ref 0.0 in
  for i = 0 to t.n - 1 do
    mx := !mx +. (t.mass.(i) *. t.vx.(i));
    my := !my +. (t.mass.(i) *. t.vy.(i));
    mz := !mz +. (t.mass.(i) *. t.vz.(i))
  done;
  (!mx, !my, !mz)

let zero_forces t =
  Array.fill t.fx 0 t.n 0.0;
  Array.fill t.fy 0 t.n 0.0;
  Array.fill t.fz 0 t.n 0.0
