(** Bonded interactions: harmonic bonds and harmonic angles — the
    "nested, pointer-rich" terms the paper had to marshal for the GPU. *)

type bond = { bi : int; bj : int; k : float; r0 : float }
type angle = { ai : int; aj : int; ak : int; ka : float; theta0 : float }

val bond_forces : Particles.t -> bond list -> float
(** Accumulate forces; returns the bond potential energy. Newton's third
    law holds pairwise. *)

val angle_forces : Particles.t -> angle list -> float
(** Accumulate forces for harmonic-in-theta angles; returns the energy.
    Net force on each triple is zero. *)
