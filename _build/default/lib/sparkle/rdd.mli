(** Resilient-distributed-dataset analog: partitioned in-memory data with
    Spark's operation vocabulary. Narrow ops stay partition-local; wide
    ops (shuffle / aggregate) genuinely move data between partitions and
    charge the cluster's cost model. *)

type 'a t = { cluster : Cluster.t; partitions : 'a array array }

val of_array : Cluster.t -> ?npartitions:int -> 'a array -> 'a t
(** Default partition count: 2 per node. *)

val num_partitions : 'a t -> int
val count : 'a t -> int
val collect : 'a t -> 'a array

val map : ?flops_per_elem:float -> ('a -> 'b) -> 'a t -> 'b t

val map_partitions : ?flops_per_elem:float -> ('a array -> 'b array) -> 'a t -> 'b t
(** The mapPartitions workhorse (E-steps and the like). *)

val filter : ('a -> bool) -> 'a t -> 'a t

val reduce :
  ?bytes_per_partial:float -> init:'b -> combine:('b -> 'a -> 'b) -> 'a t -> 'b
(** Driver-side fold; charged as an all-to-one aggregate of the
    partials. *)

val shuffle_by_key : ?bytes_per_elem:float -> (int * 'v) t -> (int * 'v) t
(** Full repartition by key hash (all copies of a key land together). *)

val group_by_key : ?bytes_per_elem:float -> (int * 'v) t -> (int * 'v list) t
(** Gather all values of each key (prefer {!reduce_by_key} when a
    combiner exists — the same advice Spark gives). *)

val join : ?bytes_per_elem:float -> (int * 'v) t -> (int * 'w) t -> (int * ('v * 'w)) t
(** Inner join by key: co-partition (two shuffles) + local hash join.
    Both datasets must share the cluster. *)

val reduce_by_key :
  ?bytes_per_elem:float -> combine:('v -> 'v -> 'v) -> (int * 'v) t -> (int * 'v) t
(** Local combine, shuffle, final combine — Spark's classic wide op. *)
