lib/sparkle/rdd.ml: Array Cluster Hashtbl List Option
