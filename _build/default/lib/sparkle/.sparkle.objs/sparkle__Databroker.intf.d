lib/sparkle/databroker.mli: Cluster
