lib/sparkle/rdd.mli: Cluster
