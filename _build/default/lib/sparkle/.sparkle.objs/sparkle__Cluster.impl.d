lib/sparkle/cluster.ml: Float Hwsim
