lib/sparkle/cluster.mli: Hwsim
