lib/sparkle/databroker.ml: Array Cluster Hashtbl Hwsim
