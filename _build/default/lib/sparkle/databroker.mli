(** The Data Broker adapter (Sec 4.4): shared in-memory key-value storage
    [25] that SparkPlug could stage shuffle data through. Tuple transfer
    bypasses JVM serialization (native buffers), so a broker-mediated
    shuffle pays wire time plus a small per-tuple put/get cost only. *)

type t

val create : ?put_cost_s:float -> ?native_rate:float -> Cluster.t -> t

val put : t -> ns:string -> key:string -> float array -> unit
(** Store a tuple in a namespace; charges broker latency + native-buffer
    transfer on the cluster clock. *)

val get : t -> ns:string -> key:string -> float array option

val delete_namespace : t -> string -> unit

val shuffle_cost : t -> bytes:float -> tuples:int -> float
(** Cost of moving a shuffle through the broker (no JVM serialization). *)

val charge_shuffle : t -> bytes:float -> tuples:int -> unit
