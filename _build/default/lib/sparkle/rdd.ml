(** Resilient-distributed-dataset analog: partitioned in-memory data with
    Spark's operation vocabulary. Narrow ops stay partition-local; wide
    ops (shuffle / aggregate) move data for real between partition arrays
    and charge the cluster's cost model. *)

type 'a t = { cluster : Cluster.t; partitions : 'a array array }

let of_array (cluster : Cluster.t) ?npartitions data =
  let np =
    match npartitions with
    | Some n -> max 1 n
    | None -> max 1 (cluster.Cluster.config.Cluster.nodes * 2)
  in
  let n = Array.length data in
  let partitions =
    Array.init np (fun p ->
        let lo = n * p / np and hi = n * (p + 1) / np in
        Array.sub data lo (hi - lo))
  in
  { cluster; partitions }

let num_partitions t = Array.length t.partitions
let count t = Array.fold_left (fun acc p -> acc + Array.length p) 0 t.partitions
let collect t = Array.concat (Array.to_list t.partitions)

(** Narrow map; [flops_per_elem] feeds the compute charge. *)
let map ?(flops_per_elem = 10.0) f t =
  Cluster.charge_compute t.cluster
    ~flops:(flops_per_elem *. float_of_int (count t));
  { t with partitions = Array.map (Array.map f) t.partitions }

(** Per-partition transform (the mapPartitions workhorse for E-steps). *)
let map_partitions ?(flops_per_elem = 10.0) f t =
  Cluster.charge_compute t.cluster
    ~flops:(flops_per_elem *. float_of_int (count t));
  { t with partitions = Array.map f t.partitions }

let filter pred t =
  Cluster.charge_compute t.cluster ~flops:(float_of_int (count t));
  {
    t with
    partitions = Array.map (fun p -> Array.of_list (List.filter pred (Array.to_list p))) t.partitions;
  }

(** Driver-side reduce over all partitions — an all-to-one aggregate of
    [bytes_per_elem]-sized partials. *)
let reduce ?(bytes_per_partial = 64.0) ~init ~combine t =
  Cluster.charge_aggregate t.cluster ~bytes_per_node:bytes_per_partial;
  Array.fold_left (Array.fold_left combine) init t.partitions

(** Full shuffle: repartition key-value pairs by key hash. Moves every
    element (genuinely) and charges the all-to-all. *)
let shuffle_by_key ?(bytes_per_elem = 32.0) (t : (int * 'v) t) =
  let np = num_partitions t in
  Cluster.charge_shuffle t.cluster
    ~bytes:(bytes_per_elem *. float_of_int (count t));
  let buckets = Array.make np [] in
  Array.iter
    (Array.iter (fun ((k, _) as kv) ->
         let p = ((k * 2654435761) land max_int) mod np in
         buckets.(p) <- kv :: buckets.(p)))
    t.partitions;
  { t with partitions = Array.map (fun l -> Array.of_list (List.rev l)) buckets }

(** groupByKey: gather all values of each key into one partition-local
    list (a full shuffle; prefer {!reduce_by_key} when a combiner
    exists — the same advice Spark gives). *)
let group_by_key ?(bytes_per_elem = 32.0) (t : (int * 'v) t) =
  let shuffled = shuffle_by_key ~bytes_per_elem t in
  let group part =
    let tbl = Hashtbl.create 64 in
    Array.iter
      (fun (k, v) ->
        Hashtbl.replace tbl k (v :: Option.value ~default:[] (Hashtbl.find_opt tbl k)))
      part;
    Array.of_list
      (Hashtbl.fold (fun k vs acc -> (k, List.rev vs) :: acc) tbl [])
  in
  Cluster.charge_compute shuffled.cluster ~flops:(2.0 *. float_of_int (count shuffled));
  { shuffled with partitions = Array.map group shuffled.partitions }

(** Inner join of two keyed datasets: co-partition by key (two shuffles),
    then a partition-local hash join. *)
let join ?(bytes_per_elem = 32.0) (a : (int * 'v) t) (b : (int * 'w) t) =
  assert (a.cluster == b.cluster);
  let np = max (num_partitions a) (num_partitions b) in
  let repartition (t : (int * _) t) =
    let padded = { t with partitions = Array.init np (fun i -> if i < num_partitions t then t.partitions.(i) else [||]) } in
    shuffle_by_key ~bytes_per_elem padded
  in
  let sa = repartition a and sb = repartition b in
  let joined =
    Array.init np (fun p ->
        let tbl = Hashtbl.create 64 in
        Array.iter (fun (k, v) -> Hashtbl.add tbl k v) sa.partitions.(p);
        Array.of_list
          (Array.fold_left
             (fun acc (k, w) ->
               List.fold_left
                 (fun acc v -> (k, (v, w)) :: acc)
                 acc (Hashtbl.find_all tbl k))
             [] sb.partitions.(p)))
  in
  Cluster.charge_compute a.cluster
    ~flops:(4.0 *. float_of_int (count sa + count sb));
  { cluster = a.cluster; partitions = joined }

(** reduceByKey: local combine, shuffle, final combine — Spark's classic
    wide op. *)
let reduce_by_key ?(bytes_per_elem = 32.0) ~combine (t : (int * 'v) t) =
  let local_combine part =
    let tbl = Hashtbl.create 64 in
    Array.iter
      (fun (k, v) ->
        match Hashtbl.find_opt tbl k with
        | None -> Hashtbl.add tbl k v
        | Some v0 -> Hashtbl.replace tbl k (combine v0 v))
      part;
    Array.of_list (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Cluster.charge_compute t.cluster ~flops:(4.0 *. float_of_int (count t));
  let pre = { t with partitions = Array.map local_combine t.partitions } in
  let shuffled = shuffle_by_key ~bytes_per_elem pre in
  { shuffled with partitions = Array.map local_combine shuffled.partitions }
