(** The SparkPlug execution substrate: a Spark-like cluster with an
    explicit cost model for the three bottlenecks the vendor team profiled
    (Sec 4.4): JVM overheads (GC, serialization, task launch), the shuffle
    implementation, and the all-to-one aggregate primitive.

    The optimized configuration bundles the paper's fixes: IBM SDK JVM,
    the adaptive shuffle of [20, 21], and tree-based all-to-one ops. *)

type config = {
  nodes : int;
  cores_per_node : int;
  jvm_optimized : bool;
  adaptive_shuffle : bool;
  tree_aggregate : bool;
  fabric : Hwsim.Link.t;
}

val default_config : ?nodes:int -> unit -> config
val optimized_config : ?nodes:int -> unit -> config

type t = { config : config; clock : Hwsim.Clock.t; trace : Hwsim.Trace.t }

val create : config -> t
val total_cores : t -> int

val task_overhead : t -> float
val ser_rate : t -> float
(** Serialization throughput, bytes/s. *)

val gc_drag : t -> float
(** Fraction added on top of compute time by garbage collection. *)

val charge_compute : t -> flops:float -> unit
val charge_shuffle : t -> bytes:float -> unit
(** All-to-all; the default sort-based path also spills to disk. *)

val charge_aggregate : t -> bytes_per_node:float -> unit
(** All-to-one: flat (driver ingests serially) or log-depth tree. *)

val charge_broadcast : t -> bytes:float -> unit

val elapsed : t -> float
val breakdown : t -> (string * float) list
val reset : t -> unit

val trace : t -> Hwsim.Trace.t
(** The span trace every charging primitive writes through; ticks the
    same clock [elapsed]/[breakdown] read, so the two views agree. *)
