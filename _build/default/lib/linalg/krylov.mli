(** Krylov solvers: CG, preconditioned CG, restarted GMRES, BiCGStab.

    The solve-phase workhorses of hypre (PCG + AMG), Cretin's batched
    iterative population solver (GMRES + Jacobi) and the matrix-free
    topology-optimization solver. All methods take the operator as a
    function, so matrix-free use is direct. *)

type result = {
  x : float array;
  iters : int;
  residual : float;  (** final relative residual ||b - Ax|| / ||b|| *)
  converged : bool;
}

val default_tol : float
(** 1e-10. *)

val cg :
  ?tol:float ->
  ?max_iter:int ->
  op:(float array -> float array) ->
  float array ->
  float array ->
  result
(** Conjugate gradients on an SPD operator: [cg ~op b x0]. Bails out
    (converged = false, x finite) if the iteration produces non-finite
    values or meets a zero/negative-curvature direction. *)

val pcg :
  ?tol:float ->
  ?max_iter:int ->
  op:(float array -> float array) ->
  precond:(float array -> float array) ->
  float array ->
  float array ->
  result
(** Preconditioned CG; [precond r] must return M^-1 r for an SPD M. *)

val gmres :
  ?tol:float ->
  ?max_iter:int ->
  ?restart:int ->
  ?precond:(float array -> float array) ->
  op:(float array -> float array) ->
  float array ->
  float array ->
  result
(** Restarted GMRES(m) with optional right preconditioning. *)

val bicgstab :
  ?tol:float ->
  ?max_iter:int ->
  op:(float array -> float array) ->
  float array ->
  float array ->
  result
(** BiCGStab for nonsymmetric systems. *)
