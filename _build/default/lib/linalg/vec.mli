(** Dense vector kernels over [float array] — the BLAS-1 building blocks
    every solver in the workload shares. Written as plain loops so
    flop/byte counts are evident when priced on the hardware model. *)

val create : int -> float array
(** Zero vector of the given length. *)

val of_list : float list -> float array
val copy : float array -> float array
val fill : float array -> float -> unit

val axpy : float -> float array -> float array -> unit
(** [axpy a x y]: y <- a*x + y. *)

val xpby : float array -> float -> float array -> unit
(** [xpby x b y]: y <- x + b*y. *)

val scale : float -> float array -> unit

val dot : float array -> float array -> float
val nrm2 : float array -> float
val nrm_inf : float array -> float

val sub : float array -> float array -> float array
(** Fresh array x - y. *)

val add : float array -> float array -> float array

val mul : float array -> float array -> float array
(** Pointwise product, fresh array. *)

val map : (float -> float) -> float array -> float array
val blit : src:float array -> dst:float array -> unit

val wrms : float array -> float array -> float
(** Weighted RMS norm used by the CVODE-style integrator:
    sqrt((1/n) sum (x_i w_i)^2). *)
