lib/linalg/krylov.ml: Array Float Vec
