lib/linalg/dense.mli: Format
