lib/linalg/csr.mli: Dense
