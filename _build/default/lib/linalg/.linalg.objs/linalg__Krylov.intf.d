lib/linalg/krylov.mli:
