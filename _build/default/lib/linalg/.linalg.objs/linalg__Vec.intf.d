lib/linalg/vec.mli:
