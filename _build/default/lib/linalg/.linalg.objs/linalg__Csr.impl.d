lib/linalg/csr.ml: Array Dense List
