lib/linalg/dense.ml: Array Float Fmt
