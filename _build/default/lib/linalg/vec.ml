(** Dense vector kernels over [float array].

    These are the BLAS-1 building blocks every solver in the workload
    shares. All are written as plain loops so flop/byte counts are evident
    when priced on the hardware model. *)

let create n = Array.make n 0.0

let of_list = Array.of_list

let copy = Array.copy

let fill v x = Array.fill v 0 (Array.length v) x

(** y <- a*x + y *)
let axpy a x y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

(** y <- x + b*y *)
let xpby x b y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    y.(i) <- x.(i) +. (b *. y.(i))
  done

let scale a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let dot x y =
  assert (Array.length x = Array.length y);
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let nrm2 x = sqrt (dot x x)

let nrm_inf x = Array.fold_left (fun m v -> max m (Float.abs v)) 0.0 x

(** z <- x - y (fresh array) *)
let sub x y =
  assert (Array.length x = Array.length y);
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let add x y =
  assert (Array.length x = Array.length y);
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

(** Pointwise product z_i = x_i * y_i (fresh array). *)
let mul x y =
  assert (Array.length x = Array.length y);
  Array.init (Array.length x) (fun i -> x.(i) *. y.(i))

let map = Array.map

let blit ~src ~dst = Array.blit src 0 dst 0 (Array.length src)

(** Weighted RMS norm used by the CVODE-style integrator:
    sqrt( (1/n) * sum (x_i * w_i)^2 ). *)
let wrms x w =
  assert (Array.length x = Array.length w);
  let n = Array.length x in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    let t = x.(i) *. w.(i) in
    s := !s +. (t *. t)
  done;
  sqrt (!s /. float_of_int n)
