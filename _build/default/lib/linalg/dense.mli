(** Dense matrices (row-major) with partial-pivoting LU — the cuSOLVER
    analog. Cretin's direct rate-matrix inversions and small FEM element
    solves go through here. *)

type t = { m : int; n : int; a : float array }

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val update : t -> int -> int -> (float -> float) -> unit
val copy : t -> t
val identity : int -> t
val transpose : t -> t

val matvec : t -> float array -> float array
val matmul : t -> t -> t

exception Singular of int
(** Raised by factorization when a pivot column is numerically zero. *)

type lu
(** An LU factorization with its pivot permutation. *)

val lu_factor : t -> lu
(** Requires a square matrix; raises {!Singular} on breakdown. *)

val lu_solve : lu -> float array -> float array

val solve : t -> float array -> float array
(** One-shot factor-and-solve. *)

val frobenius : t -> float
val pp : Format.formatter -> t -> unit
