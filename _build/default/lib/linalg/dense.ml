(** Dense matrices (row-major) with LU factorization.

    The LU path is the stand-in for cuSOLVER: Cretin's direct rate-matrix
    inversions and small FEM element solves go through here. *)

type t = { m : int; n : int; a : float array }

let create m n = { m; n; a = Array.make (m * n) 0.0 }

let init m n f =
  { m; n; a = Array.init (m * n) (fun k -> f (k / n) (k mod n)) }

let get t i j =
  assert (i >= 0 && i < t.m && j >= 0 && j < t.n);
  t.a.((i * t.n) + j)

let set t i j v =
  assert (i >= 0 && i < t.m && j >= 0 && j < t.n);
  t.a.((i * t.n) + j) <- v

let update t i j f = set t i j (f (get t i j))

let copy t = { t with a = Array.copy t.a }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let transpose t = init t.n t.m (fun i j -> get t j i)

(** y <- A x *)
let matvec t x =
  assert (Array.length x = t.n);
  let y = Array.make t.m 0.0 in
  for i = 0 to t.m - 1 do
    let s = ref 0.0 in
    let base = i * t.n in
    for j = 0 to t.n - 1 do
      s := !s +. (t.a.(base + j) *. x.(j))
    done;
    y.(i) <- !s
  done;
  y

let matmul a b =
  assert (a.n = b.m);
  let c = create a.m b.n in
  for i = 0 to a.m - 1 do
    for k = 0 to a.n - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.n - 1 do
          c.a.((i * c.n) + j) <- c.a.((i * c.n) + j) +. (aik *. get b k j)
        done
    done
  done;
  c

exception Singular of int

type lu = { lu : t; piv : int array }

(** LU with partial pivoting. Raises [Singular k] on a zero pivot column. *)
let lu_factor t =
  assert (t.m = t.n);
  let n = t.n in
  let a = copy t in
  let piv = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* pivot search *)
    let p = ref k in
    let best = ref (Float.abs (get a k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (get a i k) in
      if v > !best then begin
        best := v;
        p := i
      end
    done;
    if !best < 1e-300 then raise (Singular k);
    if !p <> k then begin
      (* swap rows k and p *)
      for j = 0 to n - 1 do
        let tmp = get a k j in
        set a k j (get a !p j);
        set a !p j tmp
      done;
      let tp = piv.(k) in
      piv.(k) <- piv.(!p);
      piv.(!p) <- tp
    end;
    let akk = get a k k in
    for i = k + 1 to n - 1 do
      let lik = get a i k /. akk in
      set a i k lik;
      for j = k + 1 to n - 1 do
        set a i j (get a i j -. (lik *. get a k j))
      done
    done
  done;
  { lu = a; piv }

(** Solve A x = b given a factorization. *)
let lu_solve { lu = a; piv } b =
  let n = a.n in
  assert (Array.length b = n);
  let x = Array.init n (fun i -> b.(piv.(i))) in
  (* forward: L y = Pb, unit diagonal *)
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for j = 0 to i - 1 do
      s := !s -. (get a i j *. x.(j))
    done;
    x.(i) <- !s
  done;
  (* backward: U x = y *)
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (get a i j *. x.(j))
    done;
    x.(i) <- !s /. get a i i
  done;
  x

(** One-shot solve. *)
let solve t b = lu_solve (lu_factor t) b

let frobenius t = sqrt (Array.fold_left (fun s v -> s +. (v *. v)) 0.0 t.a)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  for i = 0 to min (t.m - 1) 7 do
    Fmt.pf ppf "[";
    for j = 0 to min (t.n - 1) 7 do
      Fmt.pf ppf "%9.3g " (get t i j)
    done;
    Fmt.pf ppf "]@,"
  done;
  Fmt.pf ppf "@]"
