(* icoe_report: run any of the paper's reproduced experiments by id.

   Usage:
     dune exec bin/icoe_report.exe -- list
     dune exec bin/icoe_report.exe -- run fig8 table4
     dune exec bin/icoe_report.exe -- run all *)

open Cmdliner

let list_cmd =
  let doc = "List the reproducible tables and figures." in
  let run () =
    Fmt.pr "%-10s %s@." "id" "description";
    Fmt.pr "%s@." (String.make 60 '-');
    List.iter
      (fun (id, desc, _) -> Fmt.pr "%-10s %s@." id desc)
      Icoe.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run experiments by id ('all' for everything)." in
  let ids = Arg.(non_empty & pos_all string [] & info [] ~docv:"ID") in
  let run ids =
    if List.mem "all" ids then print_string (Icoe.Experiments.run_all ())
    else
      List.iter
        (fun id ->
          match Icoe.Experiments.find id with
          | Some (_, _, f) -> print_string (f ())
          | None ->
              Fmt.epr "unknown experiment %S; try 'list'@." id;
              exit 1)
        ids
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ ids)

let () =
  let doc = "Reproduced experiments from the SC'19 iCoE paper" in
  let info = Cmd.info "icoe_report" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
