(* icoe_report: run any of the paper's reproduced experiments by id.

   Usage:
     dune exec bin/icoe_report.exe -- list
     dune exec bin/icoe_report.exe -- run fig8 table4
     dune exec bin/icoe_report.exe -- run all
     dune exec bin/icoe_report.exe -- --trace /tmp/t.json

   Instrumented experiments (fig2, table2, fig8, table4) record span
   traces of the simulated machine; after a run the report appends
   per-device/per-phase rollup tables, and --trace FILE exports the spans
   as Chrome trace-event JSON for chrome://tracing / Perfetto. *)

open Cmdliner

let list_cmd =
  let doc = "List the reproducible tables and figures." in
  let run () =
    Fmt.pr "%-10s %s@." "id" "description";
    Fmt.pr "%s@." (String.make 60 '-');
    List.iter
      (fun (id, desc, _) -> Fmt.pr "%-10s %s@." id desc)
      Icoe.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* The experiments whose harnesses emit spans; the bare `--trace FILE`
   invocation (no ids) runs exactly these. *)
let traced_ids = [ "fig2"; "table2"; "fig8"; "table4" ]

let trace_arg =
  let doc =
    "Write the collected span traces to $(docv) as Chrome trace-event \
     JSON (open in chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let run_ids ids trace_file =
  Icoe.Experiments.clear_traces ();
  let ids = if ids = [] then traced_ids else ids in
  if List.mem "all" ids then print_string (Icoe.Experiments.run_all ())
  else
    List.iter
      (fun id ->
        match Icoe.Experiments.find id with
        | Some (_, _, f) -> print_string (f ())
        | None ->
            Fmt.epr "unknown experiment %S; try 'list'@." id;
            exit 1)
      ids;
  print_string (Icoe.Experiments.trace_rollup_report ());
  match trace_file with
  | None -> ()
  | Some file ->
      let traces = Icoe.Experiments.collected_traces () in
      (match open_out file with
      | oc ->
          output_string oc (Hwsim.Trace.chrome_json_of_many traces);
          close_out oc
      | exception Sys_error msg ->
          Fmt.epr "cannot write trace file: %s@." msg;
          exit 1);
      let spans =
        List.fold_left (fun n (_, t) -> n + Hwsim.Trace.span_count t) 0 traces
      in
      Fmt.pr "trace: wrote %d spans from %d experiment run(s) to %s@." spans
        (List.length traces) file

let run_cmd =
  let doc =
    "Run experiments by id ('all' for everything; defaults to the \
     trace-instrumented set)."
  in
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID") in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_ids $ ids $ trace_arg)

let () =
  let doc = "Reproduced experiments from the SC'19 iCoE paper" in
  let info = Cmd.info "icoe_report" ~version:"1.0" ~doc in
  let default = Term.(const (fun tf -> run_ids [] tf) $ trace_arg) in
  exit (Cmd.eval (Cmd.group ~default info [ list_cmd; run_cmd ]))
