(* Laser shot: the VBL activity — split-step beam propagation with an
   amplifier slab and the Fig 9 phase-defect experiment.

   Run with: dune exec examples/laser_shot.exe *)

let print_fluence_profile b label =
  let f = Vbl.Beam.fluence b in
  let n = b.Vbl.Beam.n in
  let mid = n / 2 in
  (* horizontal cut through the beam centre, downsampled *)
  let cut = Array.init (n / 4) (fun i -> f.((mid * n) + (i * 4))) in
  let _, vmax = Icoe_util.Stats.min_max cut in
  Fmt.pr "%s (centre cut, normalized):@.  " label;
  Array.iter
    (fun v ->
      let level = int_of_float (v /. max 1e-12 vmax *. 8.0) in
      Fmt.pr "%c" [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |].(min 8 level))
    cut;
  Fmt.pr "@."

let () =
  Fmt.pr "== VBL laser propagation ==@.@.";
  let b = Vbl.Beam.create ~n:256 ~width:0.05 () in
  Vbl.Beam.flat_top b;
  Fmt.pr "beam: 256^2 grid, 50 mm aperture, flat-top fill 70%%@.";
  Fmt.pr "initial power %.1f@.@." (Vbl.Beam.total_power b);
  print_fluence_profile b "at z = 0";
  (* amplifier slab *)
  Vbl.Propagate.run ~gain:(0.5, 5.0) b ~distance:2.0 ~steps:2;
  Fmt.pr "@.after 2 m of saturated-gain amplifier: power %.1f@."
    (Vbl.Beam.total_power b);
  (* inject the Fig 9 phase defects and propagate *)
  Vbl.Propagate.defect_screen ~defect_size:150e-6 ~depth:2.0 b;
  let c0 = Vbl.Beam.center_contrast b in
  Vbl.Propagate.run b ~distance:10.0 ~steps:5;
  let c1 = Vbl.Beam.center_contrast b in
  Fmt.pr "@.two 150 um phase defects injected; after 10 m of propagation:@.@.";
  print_fluence_profile b "at z = 10 m";
  Fmt.pr "@.fluence modulation contrast: %.4f -> %.4f (%.0fx growth)@." c0 c1
    (c1 /. max 1e-9 c0);
  Fmt.pr "phase defects are invisible at z=0 but ripple the fluence@.";
  Fmt.pr "downstream — the Fig 9 effect the GPU port made resolvable.@.";
  (* the transpose lesson *)
  let t_raja =
    Vbl.Propagate.step_time ~n:2048 ~device:Hwsim.Device.v100 ~transpose_variant:`Naive
  in
  let t_cuda =
    Vbl.Propagate.step_time ~n:2048 ~device:Hwsim.Device.v100 ~transpose_variant:`Tiled
  in
  Fmt.pr "@.split-step at 2048^2 on V100: %.2f ms with the naive (RAJA-port)@."
    (t_raja *. 1e3);
  Fmt.pr "transpose, %.2f ms after the hand-CUDA tiled rewrite (Sec 4.11).@."
    (t_cuda *. 1e3)
