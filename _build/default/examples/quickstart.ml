(* Quickstart: the math-library stack in a few lines.

   Solves a 2D Poisson problem three ways — plain CG, hypre BoomerAMG, and
   AMG-preconditioned CG — and prices the AMG solve phase on the simulated
   Sierra hardware.

   Run with: dune exec examples/quickstart.exe *)

let () =
  Fmt.pr "== iCoE reproduction quickstart ==@.@.";
  (* 1. a discretized PDE: the 2D Laplacian on a 64 x 64 grid *)
  let n = 64 in
  let a = Linalg.Csr.laplacian_2d n n in
  let ndof = n * n in
  Fmt.pr "problem: 2D Poisson, %d unknowns, %d nonzeros@." ndof (Linalg.Csr.nnz a);
  (* manufactured solution *)
  let rng = Icoe_util.Rng.create 1 in
  let x_true = Array.init ndof (fun _ -> Icoe_util.Rng.uniform rng (-1.0) 1.0) in
  let b = Linalg.Csr.spmv a x_true in
  let x0 = Array.make ndof 0.0 in
  (* 2. plain conjugate gradients *)
  let cg = Linalg.Krylov.cg ~tol:1e-10 ~max_iter:5000 ~op:(Linalg.Csr.spmv a) b x0 in
  Fmt.pr "plain CG:    %4d iterations (residual %.1e)@." cg.Linalg.Krylov.iters
    cg.Linalg.Krylov.residual;
  (* 3. BoomerAMG: setup on the "CPU", solve phase is matvec-shaped *)
  let amg = Hypre.Boomeramg.setup a in
  Fmt.pr "BoomerAMG:   %d levels, operator complexity %.2f@."
    (Hypre.Boomeramg.num_levels amg)
    (Hypre.Boomeramg.operator_complexity amg);
  let pcg = Hypre.Boomeramg.pcg_solve ~tol:1e-10 amg b x0 in
  Fmt.pr "AMG-PCG:     %4d iterations (residual %.1e)@." pcg.Linalg.Krylov.iters
    pcg.Linalg.Krylov.residual;
  let err = Icoe_util.Stats.max_abs_diff pcg.Linalg.Krylov.x x_true in
  Fmt.pr "max error vs manufactured solution: %.2e@.@." err;
  (* 4. price one V-cycle on the simulated machines *)
  let w = Hypre.Boomeramg.v_cycle_work amg in
  let t_gpu = Hwsim.Roofline.time Hwsim.Device.v100 w in
  let t_cpu = Hwsim.Roofline.time Hwsim.Device.power9 w in
  Fmt.pr "one V-cycle priced on the hardware model:@.";
  Fmt.pr "  V100:  %.1f us@." (t_gpu *. 1e6);
  Fmt.pr "  P9:    %.1f us@." (t_cpu *. 1e6);
  Fmt.pr "(at this small size launch overhead dominates the GPU — exactly@.";
  Fmt.pr " the effect the paper's teams fought with kernel fusion)@."
