(* Drone design: the Opt activity's science result (Fig 5 — "a drone that
   has flown successfully") at benchmark scale.

   Runs the SIMP topology optimizer on the heat-funnel design problem,
   prints the evolving design, and shows both Sec 4.7 performance stories:
   the texture-cache lever and the job-scheduling campaign that a
   design-under-uncertainty workflow generates.

   Run with: dune exec examples/drone_design.exe *)

let print_design (t : Opt.Topopt.t) =
  for j = t.Opt.Topopt.ny - 1 downto 0 do
    Fmt.pr "  ";
    for i = 0 to t.Opt.Topopt.nx - 1 do
      let r = t.Opt.Topopt.rho.(Opt.Topopt.idx t i j) in
      Fmt.pr "%c" (if r > 0.7 then '#' else if r > 0.3 then '+' else '.')
    done;
    Fmt.pr "@."
  done

let () =
  Fmt.pr "== Opt: topology optimization (the drone-design engine) ==@.@.";
  let t = Opt.Topopt.create ~volfrac:0.4 ~nx:30 ~ny:20 () in
  Fmt.pr "30 x 20 design grid, 40%% material budget@.";
  Fmt.pr "load: flux along the top edge; sink: short segment, bottom centre@.@.";
  let hist = Opt.Topopt.optimize ~iters:50 t in
  Fmt.pr "optimized design (# solid, + intermediate, . void):@.";
  print_design t;
  Fmt.pr "@.final compliance %.1f (history head %.1f), volume %.3f, %d CG iterations total@."
    hist.(49) hist.(0) (Opt.Topopt.volume t) t.Opt.Topopt.cg_iters_total;
  (* the lesson-learned about CUDA vs RAJA *)
  let cells = 1_000_000 in
  Fmt.pr "@.matrix-free apply at 1M cells:@.";
  Fmt.pr "  P100 (EA system):  %.2f ms without textures, %.2f ms with@."
    (Opt.Topopt.apply_time ~cells Hwsim.Device.p100 ~textures:false *. 1e3)
    (Opt.Topopt.apply_time ~cells Hwsim.Device.p100 ~textures:true *. 1e3);
  Fmt.pr "  V100 (final):      %.2f ms without textures, %.2f ms with@."
    (Opt.Topopt.apply_time ~cells Hwsim.Device.v100 ~textures:false *. 1e3)
    (Opt.Topopt.apply_time ~cells Hwsim.Device.v100 ~textures:true *. 1e3);
  Fmt.pr "-> the texture-memory trick that forced CUDA on the EA system is moot@.";
  Fmt.pr "   on Volta; \"RAJA would have been sufficient\" (Sec 4.7)@.";
  (* the design campaign as a scheduling problem *)
  let rng = Icoe_util.Rng.create 5 in
  let jobs = Opt.Scheduler.batch_workload ~rng ~n:500 () in
  Fmt.pr "@.scheduling the 500-evaluation design campaign on 16 GPUs:@.";
  List.iter
    (fun pol ->
      let m = Opt.Scheduler.simulate ~gpus:16 pol jobs in
      Fmt.pr "  %-16s utilization %.3f  mean wait %6.1f s@."
        (Opt.Scheduler.policy_name pol) m.Opt.Scheduler.utilization
        m.Opt.Scheduler.mean_wait)
    [ Opt.Scheduler.Fcfs; Opt.Scheduler.Sjf; Opt.Scheduler.Sjf_quota 0.5 ]
