examples/data_analytics.mli:
