examples/drone_design.ml: Array Fmt Hwsim Icoe_util List Opt
