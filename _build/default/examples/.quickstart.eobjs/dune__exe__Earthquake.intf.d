examples/earthquake.mli:
