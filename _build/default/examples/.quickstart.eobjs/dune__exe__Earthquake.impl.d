examples/earthquake.ml: Array Fmt Hwsim Icoe_util String Sw4
