examples/mummi_workflow.mli:
