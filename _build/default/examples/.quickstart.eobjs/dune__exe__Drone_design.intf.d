examples/drone_design.mli:
