examples/quickstart.ml: Array Fmt Hwsim Hypre Icoe_util Linalg
