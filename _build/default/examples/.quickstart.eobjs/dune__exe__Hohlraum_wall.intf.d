examples/hohlraum_wall.mli:
