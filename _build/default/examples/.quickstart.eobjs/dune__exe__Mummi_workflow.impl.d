examples/mummi_workflow.ml: Array Ddcmd Fmt Icoe_util List Opt
