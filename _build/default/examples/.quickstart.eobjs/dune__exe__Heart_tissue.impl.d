examples/heart_tissue.ml: Array Cardioid Fmt List
