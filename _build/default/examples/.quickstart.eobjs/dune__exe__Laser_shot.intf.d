examples/laser_shot.mli:
