examples/quickstart.mli:
