examples/hohlraum_wall.ml: Array Cretin Fmt List String
