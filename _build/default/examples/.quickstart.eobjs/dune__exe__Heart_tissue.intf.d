examples/heart_tissue.mli:
