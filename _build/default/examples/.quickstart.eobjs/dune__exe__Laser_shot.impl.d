examples/laser_shot.ml: Array Fmt Hwsim Icoe_util Vbl
