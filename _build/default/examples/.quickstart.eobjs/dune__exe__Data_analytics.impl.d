examples/data_analytics.ml: Array Fmt Icoe_util Lda List Sparkle String
