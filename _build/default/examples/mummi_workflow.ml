(* MuMMI-style workflow: the MD activity plus the Opt activity's scheduler,
   composed the way Sec 4.6 / Fig 4 describes — a macro model spawns many
   short GPU micro-simulations (ddcMD) that a scheduler packs onto a node's
   GPUs.

   Runs real (small) Martini-like MD patches as the "jobs", schedules a
   campaign of them with SJF+quota, and reports the ddcMD-vs-GROMACS model.

   Run with: dune exec examples/mummi_workflow.exe *)

let run_micro_sim ~seed ~steps =
  (* one coarse-grained membrane patch simulation *)
  let rng = Icoe_util.Rng.create seed in
  let p = Ddcmd.Particles.create ~n:96 ~box:5.0 in
  Ddcmd.Particles.lattice_init p;
  for i = 0 to 95 do
    p.Ddcmd.Particles.species.(i) <- i mod 2
  done;
  Ddcmd.Particles.thermalize p ~rng ~temp:1.0;
  let eps = [| [| 1.0; 0.6 |]; [| 0.6; 1.2 |] |] in
  let sg = [| [| 0.6; 0.6 |]; [| 0.6; 0.6 |] |] in
  let bonds =
    List.init 48 (fun k ->
        { Ddcmd.Bonded.bi = 2 * k; bj = (2 * k) + 1; k = 50.0; r0 = 0.5 })
  in
  let e =
    Ddcmd.Engine.create ~dt:0.002 ~bonds
      ~potential:(Ddcmd.Potential.martini ~epsilon:eps ~sigma:sg ~cutoff:1.2 ())
      p
  in
  Ddcmd.Engine.run ~langevin:(2.0, 1.0, rng) e ~steps;
  (Ddcmd.Particles.temperature p, e.Ddcmd.Engine.pair_count)

let () =
  Fmt.pr "== MuMMI-style workflow: macro model -> micro MD on GPUs ==@.@.";
  (* 1. run a few real micro simulations *)
  Fmt.pr "running 4 real ddcMD micro-simulations (96 beads, 400 steps)...@.";
  for seed = 1 to 4 do
    let temp, pairs = run_micro_sim ~seed ~steps:400 in
    Fmt.pr "  patch %d: T = %.2f (target 1.0), %d interacting pairs@." seed temp pairs
  done;
  (* 2. the campaign: hundreds of such jobs on a 4-GPU node, scheduled *)
  let rng = Icoe_util.Rng.create 99 in
  let jobs = Opt.Scheduler.batch_workload ~rng ~n:300 () in
  Fmt.pr "@.scheduling a 300-job campaign on 4 GPUs:@.";
  List.iter
    (fun pol ->
      let m = Opt.Scheduler.simulate ~gpus:8 pol jobs in
      Fmt.pr "  %-16s utilization %.3f, mean wait %6.1f s@."
        (Opt.Scheduler.policy_name pol) m.Opt.Scheduler.utilization
        m.Opt.Scheduler.mean_wait)
    [ Opt.Scheduler.Fcfs; Opt.Scheduler.Sjf; Opt.Scheduler.Sjf_quota 0.5 ];
  (* 3. why ddcMD and not GROMACS inside MuMMI *)
  Fmt.pr "@.ddcMD vs GROMACS per MD step (the Sec 4.6 comparison):@.";
  List.iter
    (fun s ->
      let d, g = Ddcmd.Perf.step_times s in
      Fmt.pr "  %-20s ddcMD %.2f ms, GROMACS %.2f ms (%.1fx)@."
        (Ddcmd.Perf.scenario_name s) (d *. 1e3) (g *. 1e3) (g /. d))
    [ Ddcmd.Perf.One_gpu; Ddcmd.Perf.Four_gpu; Ddcmd.Perf.Mummi ];
  Fmt.pr "-> inside MuMMI the CPUs are busy with the macro model and in-situ@.";
  Fmt.pr "   analysis, so the GPU-resident ddcMD is 2.3x faster (paper value)@."
