(* Cardiac tissue: the Cardioid activity end to end.

   Builds the ionic model through the Melodee DSL (rational-polynomial
   variant with compile-time constants), runs a monodomain excitation wave
   across a 2D tissue patch, prints activation-time isochrones, and shows
   the DSL's cost ladder plus the all-GPU placement decision.

   Run with: dune exec examples/heart_tissue.exe *)

let () =
  Fmt.pr "== Cardioid monodomain tissue ==@.@.";
  (* DSL cost ladder *)
  Fmt.pr "Melodee reaction-kernel variants (per-cell cost):@.";
  List.iter
    (fun v ->
      Fmt.pr "  %-16s %4.0f flops, %3d coefficient loads@."
        (Cardioid.Ionic.variant_name v)
        (Cardioid.Ionic.variant_flops v)
        (Cardioid.Ionic.variant_loads v))
    [ Cardioid.Ionic.Libm; Cardioid.Ionic.Rational; Cardioid.Ionic.Rational_folded ];
  (* tissue simulation with the optimized variant *)
  let nx = 48 and ny = 16 in
  let m = Cardioid.Monodomain.create ~nx ~ny ~variant:Cardioid.Ionic.Rational_folded () in
  Cardioid.Monodomain.stimulate m ~ilo:0 ~ihi:2 ~jlo:0 ~jhi:(ny - 1) ~amplitude:60.0;
  let activation = Array.make (nx * ny) (-1) in
  let total_steps = 1500 in
  for s = 1 to total_steps / 25 do
    Cardioid.Monodomain.run m ~steps:25;
    if s = 6 then Cardioid.Monodomain.clear_stimulus m;
    for j = 0 to ny - 1 do
      for i = 0 to nx - 1 do
        let k = Cardioid.Monodomain.idx m i j in
        if activation.(k) < 0 && Cardioid.Monodomain.activated m ~i ~j then
          activation.(k) <- s * 25
      done
    done
  done;
  Fmt.pr "@.activation isochrones (digit = activation time / 150 steps):@.";
  for j = 0 to ny - 1 do
    Fmt.pr "  ";
    for i = 0 to nx - 1 do
      let a = activation.(Cardioid.Monodomain.idx m i j) in
      if a < 0 then Fmt.pr "."
      else Fmt.pr "%d" (min 9 (a / 150))
    done;
    Fmt.pr "@."
  done;
  let reached =
    Array.fold_left (fun c a -> if a >= 0 then c + 1 else c) 0 activation
  in
  Fmt.pr "@.wave activated %d / %d cells@." reached (nx * ny);
  (* placement decision *)
  Fmt.pr "@.placement study at 1M cells (us/step):@.";
  List.iter
    (fun pl ->
      Fmt.pr "  %-28s %8.1f@."
        (Cardioid.Monodomain.placement_name pl)
        (Cardioid.Monodomain.time_per_step ~cells:1_000_000 pl *. 1e6))
    [ Cardioid.Monodomain.All_cpu; Cardioid.Monodomain.Split_cpu_gpu;
      Cardioid.Monodomain.All_gpu ];
  Fmt.pr "-> keep everything on the GPU (the Sec 4.1 decision)@."
