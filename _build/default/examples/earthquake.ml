(* Earthquake scenario: the SW4 activity's science result at laptop scale.

   Simulates a buried rupture under a soft sedimentary basin (the
   Hayward-fault analog of Sec 4.9 / Fig 7), prints the surface
   peak-ground-velocity profile as an ASCII shake map, and reports the
   basin-amplification result plus the Sierra-vs-Cori throughput model.

   Run with: dune exec examples/earthquake.exe *)

let () =
  Fmt.pr "== SW4 earthquake scenario ==@.@.";
  let nx = 160 and ny = 96 and h = 100.0 in
  Fmt.pr "domain: %.1f x %.1f km, h = %.0f m, %d grid points@."
    (float_of_int nx *. h /. 1000.0)
    (float_of_int ny *. h /. 1000.0)
    h (nx * ny);
  let r = Sw4.Scenario.run_hayward ~nx ~ny ~h ~steps:600 () in
  (* ASCII shake map of surface PGV *)
  let pgv = r.Sw4.Scenario.pgv_surface in
  let interior = Array.sub pgv 4 (nx - 8) in
  let _, vmax = Icoe_util.Stats.min_max interior in
  Fmt.pr "@.surface peak ground velocity (x = basin side | bedrock side):@.";
  let glyphs = [| ' '; '.'; ':'; '+'; '*'; '#'; '@' |] in
  let rows = 8 in
  for row = rows downto 1 do
    let thresh = float_of_int row /. float_of_int rows *. vmax in
    Fmt.pr "  ";
    Array.iteri
      (fun i v ->
        if i mod 2 = 0 then
          let g =
            if v >= thresh then
              glyphs.(min 6 (int_of_float (v /. vmax *. 6.0)))
            else ' '
          in
          Fmt.pr "%c" g)
      interior;
    Fmt.pr "@."
  done;
  Fmt.pr "  %s@." (String.make (Array.length interior / 2) '-');
  Fmt.pr "  ^ soft basin%sbedrock ^@.@."
    (String.make (max 1 ((Array.length interior / 2) - 22)) ' ');
  Fmt.pr "basin amplification observed: %b (the Fig 7 story)@."
    r.Sw4.Scenario.basin_amplified;
  (* per-node throughput comparison behind the abstract's 14x claim *)
  let sierra = Sw4.Scenario.node_throughput Hwsim.Node.witherspoon ~points:4_000_000 in
  let cori = Sw4.Scenario.node_throughput Hwsim.Node.cori_ii ~points:4_000_000 in
  Fmt.pr "@.node throughput (grid-point updates/s):@.";
  Fmt.pr "  Sierra (4x V100): %.2e@." sierra;
  Fmt.pr "  Cori-II (KNL):    %.2e@." cori;
  Fmt.pr "  ratio: %.1fx (paper: 'up to a 14X throughput increase over Cori')@."
    (sierra /. cori)
