(* Hohlraum wall: the Cretin activity's science context (Fig 1 — the gold
   hohlraum of ICF experiments). Solves non-LTE level populations through
   a wall temperature gradient with minikin, derives frequency-dependent
   opacities, and shows the Sec 4.3 model-size/threading trade-off that
   the GPU port resolves.

   Run with: dune exec examples/hohlraum_wall.exe *)

let () =
  Fmt.pr "== Cretin: non-LTE kinetics through a hohlraum wall ==@.@.";
  let model = Cretin.Atomic.ladder 12 in
  let nzones = 16 in
  (* coronal-ish density: radiative decay competes with collisions, so
     the populations are genuinely non-LTE *)
  let mk = Cretin.Minikin.create ~nzones ~te0:2.0 ~te1:60.0 ~ne:1.0e16 model in
  Cretin.Minikin.solve_all mk;
  Fmt.pr "12-level atomic model, %d zones from 2 eV (cold wall) to 60 eV (hot)@.@." nzones;
  Fmt.pr "zone  Te(eV)  ground pop  mean excitation@.";
  Array.iteri
    (fun z (zone : Cretin.Minikin.zone) ->
      if z mod 3 = 0 then
        Fmt.pr "  %2d  %6.1f      %.4f          %.3f@." z
          zone.Cretin.Minikin.cond.Cretin.Ratematrix.te
          zone.Cretin.Minikin.populations.(0)
          (Cretin.Minikin.mean_excitation zone))
    mk.Cretin.Minikin.zones;
  (* non-LTE vs LTE in the hottest zone *)
  let hot = mk.Cretin.Minikin.zones.(nzones - 1) in
  let lte = Cretin.Atomic.boltzmann model ~te:hot.Cretin.Minikin.cond.Cretin.Ratematrix.te in
  Fmt.pr "@.hottest zone, level 6: non-LTE %.5f vs LTE %.5f (radiative decay@."
    hot.Cretin.Minikin.populations.(6) lte.(6);
  Fmt.pr "depletes excited states — why LTE opacities are wrong here)@.";
  (* opacity spectrum of a mid-wall zone *)
  let mid = mk.Cretin.Minikin.zones.(nzones / 2) in
  let te = mid.Cretin.Minikin.cond.Cretin.Ratematrix.te in
  let sp =
    Cretin.Opacity.spectrum ~npts:64 model
      ~populations:mid.Cretin.Minikin.populations ~te
  in
  let kmax =
    Array.fold_left (fun m (_, k) -> max m k) 1e-12 sp
  in
  Fmt.pr "@.opacity spectrum at Te = %.1f eV (log-ish bar chart):@." te;
  Array.iteri
    (fun i (e, k) ->
      if i mod 2 = 0 then begin
        let bar = int_of_float (20.0 *. sqrt (k /. kmax)) in
        Fmt.pr "  %6.2f eV |%s@." e (String.make bar '#')
      end)
    sp;
  Fmt.pr "@.Planck-mean opacity: %.3g (arb. units)@."
    (Cretin.Opacity.planck_mean model ~populations:mid.Cretin.Minikin.populations
       ~te ~tr:(0.8 *. te));
  (* the Sec 4.3 performance story *)
  Fmt.pr "@.model-size scaling on a Sierra node (GPU threads over transitions,@.";
  Fmt.pr "CPU threads over zones with per-zone workspaces):@.";
  List.iter
    (fun n ->
      let m = Cretin.Atomic.ladder n in
      let s, idle = Cretin.Minikin.node_speedup m in
      Fmt.pr "  %6d levels: zone %7.1f MB, %2.0f%% CPU cores idle, GPU %5.2fx@."
        n
        (Cretin.Atomic.zone_bytes m /. 1e6)
        (idle *. 100.0) s)
    [ 400; 2000; 12000; 18000 ];
  Fmt.pr "-> the paper's 5.75X for the second-largest model, and 'much@.";
  Fmt.pr "   higher' for the largest once memory idles 60%% of the cores@."
