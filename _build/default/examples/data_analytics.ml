(* Data analytics: the SparkPlug LDA pipeline of Sec 4.4.

   Generates a synthetic multi-language corpus, trains LDA by distributed
   variational EM on the mini-Spark substrate, shows the learned topics,
   and compares the default and optimized cluster stacks at paper scale.

   Run with: dune exec examples/data_analytics.exe *)

let () =
  Fmt.pr "== SparkPlug LDA on the mini-Spark substrate ==@.@.";
  let rng = Icoe_util.Rng.create 42 in
  let corpus =
    Lda.Corpus.generate ~ndocs:200 ~languages:2 ~vocab_per_lang:120
      ~topics_per_lang:3 ~rng ()
  in
  Fmt.pr "corpus: %d documents, %d tokens, vocabulary %d (2 languages)@."
    (Array.length corpus.Lda.Corpus.docs)
    (Lda.Corpus.tokens corpus) corpus.Lda.Corpus.vocab;
  let cluster = Sparkle.Cluster.create (Sparkle.Cluster.default_config ~nodes:4 ()) in
  let rdd = Sparkle.Rdd.of_array cluster corpus.Lda.Corpus.docs in
  Fmt.pr "distributed over %d partitions on a %d-node cluster@.@."
    (Sparkle.Rdd.num_partitions rdd) 4;
  let model =
    Lda.Vem.init ~rng ~k:corpus.Lda.Corpus.k_true ~vocab:corpus.Lda.Corpus.vocab ()
  in
  let trace = Lda.Vem.train ~iters:12 model rdd in
  Fmt.pr "variational EM log-likelihood:@.";
  Array.iteri
    (fun i ll -> if i mod 3 = 0 then Fmt.pr "  iter %2d: %.0f@." i ll)
    trace;
  Fmt.pr "topic recovery vs ground truth: %.2f (cosine match)@."
    (Lda.Vem.recovery_score model corpus.Lda.Corpus.topic_word);
  (* top words per learned topic *)
  Fmt.pr "@.top words per learned topic (word ids; blocks 0-119 = language A,@.";
  Fmt.pr "120-239 = language B — topics respect language boundaries):@.";
  Array.iteri
    (fun t row ->
      let idx = Array.init (Array.length row) (fun i -> i) in
      Array.sort (fun a b -> compare row.(b) row.(a)) idx;
      Fmt.pr "  topic %d: %s@." t
        (String.concat " " (List.init 5 (fun i -> string_of_int idx.(i)))))
    (Lda.Vem.topics model);
  (* the Fig 2 comparison *)
  let slow = Lda.Fig2.run ~optimized:false Lda.Fig2.wikipedia in
  let fast = Lda.Fig2.run ~optimized:true Lda.Fig2.wikipedia in
  Fmt.pr "@.Wikipedia-scale stack comparison (simulated, 32 nodes):@.";
  Fmt.pr "  default stack:   %6.0f s@." (Sparkle.Cluster.elapsed slow);
  Fmt.pr "  optimized stack: %6.0f s (%.1fx — paper: 'more than 2X')@."
    (Sparkle.Cluster.elapsed fast)
    (Sparkle.Cluster.elapsed slow /. Sparkle.Cluster.elapsed fast)
